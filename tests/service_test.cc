// Tests for the service layer: sessions, the confidence-result cache,
// admission control, deadlines, shutdown and the stats counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "service/query_service.h"

namespace pcqe {
namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

/// The paper's running example behind a service: data, roles (Secretary,
/// Manager), policies P1 = <Secretary, analysis, 0.05> and
/// P2 = <Manager, investment, 0.06>.
class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* proposal = *catalog_.CreateTable(
        "Proposal", Schema({{"company", DataType::kString, ""},
                            {"proposal", DataType::kString, ""},
                            {"funding", DataType::kDouble, ""}}));
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("AlphaTech"), Value::String("expansion"),
                              Value::Double(2e6)},
                             0.5)
                    .ok());
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("BlueSky"), Value::String("marketing"),
                              Value::Double(8e5)},
                             0.3, *MakeLinearCost(1000.0))
                    .ok());
    id03_ = *proposal->Insert(
        {Value::String("BlueSky"), Value::String("research"), Value::Double(5e5)}, 0.4,
        *MakeLinearCost(100.0));
    Table* info = *catalog_.CreateTable(
        "CompanyInfo",
        Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
    ASSERT_TRUE(
        info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8).ok());
    ASSERT_TRUE(info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                             *MakeLinearCost(10000.0))
                    .ok());

    RoleGraph roles;
    ASSERT_TRUE(roles.AddRole("Secretary").ok());
    ASSERT_TRUE(roles.AddRole("Manager").ok());
    ASSERT_TRUE(roles.AddRole("Auditor").ok());
    ASSERT_TRUE(roles.AddUser("sam").ok());
    ASSERT_TRUE(roles.AddUser("mary").ok());
    ASSERT_TRUE(roles.AddUser("amy").ok());
    ASSERT_TRUE(roles.AssignRole("sam", "Secretary").ok());
    ASSERT_TRUE(roles.AssignRole("mary", "Manager").ok());
    ASSERT_TRUE(roles.AssignRole("amy", "Auditor").ok());
    PolicyStore policies;
    ASSERT_TRUE(policies.AddPolicy(roles, {"Secretary", "analysis", 0.05}).ok());
    ASSERT_TRUE(policies.AddPolicy(roles, {"Manager", "investment", 0.06}).ok());
    // A demanding threshold for the deadline tests: audits release only
    // high-confidence rows, so large instances genuinely need the solver.
    ASSERT_TRUE(policies.AddPolicy(roles, {"Auditor", "audit", 0.9}).ok());
    engine_ = std::make_unique<PcqeEngine>(&catalog_, std::move(roles),
                                           std::move(policies));
  }

  std::unique_ptr<QueryService> MakeService(ServiceOptions options) {
    return std::make_unique<QueryService>(engine_.get(), options);
  }

  Catalog catalog_;
  std::unique_ptr<PcqeEngine> engine_;
  BaseTupleId id03_ = 0;
};

TEST(NormalizeSqlTest, CanonicalizesWhitespaceAndSemicolon) {
  EXPECT_EQ(NormalizeSql("  SELECT   x\n\tFROM t ; "), "SELECT x FROM t");
  EXPECT_EQ(NormalizeSql("SELECT x FROM t"), "SELECT x FROM t");
  // Case is preserved: string literals are case-sensitive.
  EXPECT_EQ(NormalizeSql("select 'A'"), "select 'A'");
  EXPECT_EQ(NormalizeSql(""), "");
}

TEST_F(QueryServiceTest, OpenSessionPinsRolesAndThreshold) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle mary = *service->OpenSession("mary", "investment");
  EXPECT_EQ(mary.user, "mary");
  EXPECT_EQ(mary.roles, std::vector<std::string>{"Manager"});
  EXPECT_DOUBLE_EQ(mary.base_decision.threshold, 0.06);
  EXPECT_NE(mary.ToString().find("mary/investment"), std::string::npos);

  SessionHandle sam = *service->OpenSession("sam", "analysis");
  EXPECT_DOUBLE_EQ(sam.base_decision.threshold, 0.05);
  EXPECT_NE(sam.id, mary.id);
  EXPECT_EQ(service->stats().active_sessions, 2u);

  ASSERT_TRUE(service->CloseSession(sam.id).ok());
  EXPECT_EQ(service->stats().active_sessions, 1u);
  EXPECT_TRUE(service->CloseSession(sam.id).IsNotFound());
}

TEST_F(QueryServiceTest, UnknownUserCannotOpenSession) {
  auto service = MakeService({.num_workers = 1});
  EXPECT_TRUE(service->OpenSession("ghost", "analysis").status().IsNotFound());
}

TEST_F(QueryServiceTest, ServiceMatchesDirectEngineSubmission) {
  auto service = MakeService({.num_workers = 2});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  QueryOutcome via_service =
      *service->Submit(sam, {.sql = kCandidateQuery, .required_fraction = 1.0});
  QueryOutcome direct =
      *engine_->Submit({kCandidateQuery, "sam", "analysis", 1.0});
  EXPECT_EQ(via_service.released.size(), direct.released.size());
  EXPECT_DOUBLE_EQ(via_service.policy.threshold, direct.policy.threshold);
  EXPECT_DOUBLE_EQ(via_service.released_fraction, direct.released_fraction);
}

TEST_F(QueryServiceTest, DistinctSessionsShareOneEvaluation) {
  auto service = MakeService({.num_workers = 2});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  SessionHandle mary = *service->OpenSession("mary", "investment");

  // Same SQL, different β: sam (0.05) sees the 0.058 row, mary (0.06) does
  // not — but the second submission reuses the first one's evaluation.
  QueryOutcome for_sam =
      *service->Submit(sam, {.sql = kCandidateQuery, .required_fraction = 0.0});
  QueryOutcome for_mary =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 0.0});
  EXPECT_EQ(for_sam.released.size(), 1u);
  EXPECT_TRUE(for_mary.released.empty());

  ServiceStatsSnapshot stats = service->stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GT(stats.cache_hit_rate(), 0.0);
  // Whitespace variants hit the same entry.
  ASSERT_TRUE(
      service->Submit(sam, {.sql = std::string("  ") + kCandidateQuery + " ;"}).ok());
  EXPECT_EQ(service->stats().cache_hits, 2u);
}

TEST_F(QueryServiceTest, PushdownModeForksTheCacheKey) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle mary = *service->OpenSession("mary", "investment");
  // Shape-safe query (no DISTINCT/aggregate/LIMIT): the engine resolves
  // mary's β = 0.06 and pushes it below the scan.
  constexpr const char* kSafeQuery = "SELECT company, funding FROM proposal";

  QueryOutcome pushed =
      *service->Submit(mary, {.sql = kSafeQuery, .required_fraction = 0.0});
  EXPECT_TRUE(pushed.intermediate.pushed_down);
  EXPECT_EQ(service->stats().cache_misses, 1u);

  // The same SQL with pushdown off must MISS: a pushed evaluation excludes
  // pruned rows from its intermediate, so serving it to an unpushed request
  // would silently change the audit surface.
  QueryOutcome unpushed = *service->Submit(
      mary, {.sql = kSafeQuery, .required_fraction = 0.0, .pushdown = false});
  EXPECT_FALSE(unpushed.intermediate.pushed_down);
  EXPECT_EQ(service->stats().cache_misses, 2u);
  EXPECT_EQ(service->stats().cache_hits, 0u);
  // Both modes release the same rows (the differential identity claim).
  ASSERT_EQ(unpushed.released.size(), pushed.released.size());
  for (size_t i = 0; i < pushed.released.size(); ++i) {
    EXPECT_EQ(pushed.intermediate.rows[pushed.released[i]].confidence,
              unpushed.intermediate.rows[unpushed.released[i]].confidence);
  }

  // Each mode re-serves from its own entry.
  ASSERT_TRUE(
      service->Submit(mary, {.sql = kSafeQuery, .required_fraction = 0.0}).ok());
  ASSERT_TRUE(service
                  ->Submit(mary, {.sql = kSafeQuery,
                                  .required_fraction = 0.0,
                                  .pushdown = false})
                  .ok());
  EXPECT_EQ(service->stats().cache_hits, 2u);
  EXPECT_EQ(service->stats().cache_misses, 2u);
}

TEST_F(QueryServiceTest, AcceptInvalidatesCacheViaConfidenceVersion) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle mary = *service->OpenSession("mary", "investment");

  uint64_t version_before = catalog_.confidence_version();
  QueryOutcome blocked =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  ASSERT_TRUE(blocked.proposal.needed);
  EXPECT_TRUE(blocked.released.empty());

  ASSERT_TRUE(service->Accept(blocked.proposal).ok());
  EXPECT_GT(catalog_.confidence_version(), version_before);

  // The cached evaluation is stale now; the re-submission must re-evaluate
  // (a miss) and see the improved confidence.
  QueryOutcome after =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  EXPECT_EQ(after.released.size(), 1u);
  EXPECT_FALSE(after.proposal.needed);
  EXPECT_EQ(service->stats().cache_misses, 2u);
}

TEST_F(QueryServiceTest, AdmissionControlRejectsOnOverflow) {
  // Zero workers: nothing drains the queue, so the bound is deterministic.
  auto service = MakeService({.num_workers = 0, .queue_capacity = 2});
  SessionHandle sam = *service->OpenSession("sam", "analysis");

  std::vector<std::future<Result<QueryOutcome>>> accepted;
  for (int i = 0; i < 2; ++i) {
    auto future = service->SubmitAsync(sam, {.sql = kCandidateQuery});
    ASSERT_TRUE(future.ok());
    accepted.push_back(std::move(*future));
  }
  EXPECT_EQ(service->queue_depth(), 2u);
  auto rejected = service->SubmitAsync(sam, {.sql = kCandidateQuery});
  EXPECT_TRUE(rejected.status().IsResourceExhausted());

  service->Shutdown();
  for (auto& future : accepted) {
    EXPECT_TRUE(future.get().status().IsResourceExhausted());  // dropped
  }
  ServiceStatsSnapshot stats = service->stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shutdown_dropped, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(QueryServiceTest, SubmitAfterShutdownIsRejected) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  service->Shutdown();
  EXPECT_TRUE(
      service->SubmitAsync(sam, {.sql = kCandidateQuery}).status().IsResourceExhausted());
  service->Shutdown();  // idempotent
}

TEST_F(QueryServiceTest, QueuedDeadlineExpires) {
  // One worker chewing through a backlog: the last request carries a 1ms
  // deadline and sits behind enough work that it must expire in queue.
  auto service = MakeService({.num_workers = 1, .queue_capacity = 64});
  SessionHandle sam = *service->OpenSession("sam", "analysis");

  std::vector<std::future<Result<QueryOutcome>>> backlog;
  for (int i = 0; i < 30; ++i) {
    auto future = service->SubmitAsync(sam, {.sql = kCandidateQuery});
    if (future.ok()) backlog.push_back(std::move(*future));
  }
  auto hurried =
      service->SubmitAsync(sam, {.sql = kCandidateQuery, .timeout_ms = 1});
  ASSERT_TRUE(hurried.ok());
  Result<QueryOutcome> outcome = hurried->get();
  // Either the queue was slow enough (expired) or the machine raced through
  // 30 evaluations in under a millisecond (served); both are legal, but the
  // stats must agree with whichever happened.
  ServiceStatsSnapshot stats;
  for (auto& future : backlog) (void)future.get();
  stats = service->stats();
  if (!outcome.ok()) {
    EXPECT_TRUE(outcome.status().IsResourceExhausted());
    EXPECT_GE(stats.expired, 1u);
  } else {
    EXPECT_EQ(stats.expired, 0u);
  }
  EXPECT_EQ(stats.submitted, stats.served + stats.expired);
}

TEST_F(QueryServiceTest, EngineErrorsCountAsFailed) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  EXPECT_TRUE(service->Submit(sam, {.sql = "SELEC oops"}).status().IsParseError());
  EXPECT_TRUE(
      service->Submit(sam, {.sql = kCandidateQuery, .required_fraction = 2.0})
          .status()
          .IsInvalidArgument());
  ServiceStatsSnapshot stats = service->stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.served, 0u);
}

TEST_F(QueryServiceTest, ZeroRowQueryServesWithFullFraction) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle mary = *service->OpenSession("mary", "investment");
  QueryOutcome outcome = *service->Submit(
      mary, {.sql = "SELECT * FROM proposal WHERE company = 'Nobody'",
             .required_fraction = 1.0});
  EXPECT_TRUE(outcome.intermediate.rows.empty());
  EXPECT_DOUBLE_EQ(outcome.released_fraction, 1.0);
  EXPECT_FALSE(outcome.proposal.needed);
}

TEST_F(QueryServiceTest, LruEvictsLeastRecentlyUsedEntry) {
  auto service = MakeService({.num_workers = 1, .cache_capacity = 2});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  const std::string q1 = "SELECT company FROM proposal";
  const std::string q2 = "SELECT funding FROM proposal";
  const std::string q3 = "SELECT proposal FROM proposal";

  ASSERT_TRUE(service->Submit(sam, {.sql = q1}).ok());  // miss -> {q1}
  ASSERT_TRUE(service->Submit(sam, {.sql = q2}).ok());  // miss -> {q2,q1}
  ASSERT_TRUE(service->Submit(sam, {.sql = q1}).ok());  // hit, q1 freshened
  EXPECT_EQ(service->stats().cache_hits, 1u);
  ASSERT_TRUE(service->Submit(sam, {.sql = q3}).ok());  // miss, evicts q2
  ServiceStatsSnapshot stats = service->stats();
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 2u);

  ASSERT_TRUE(service->Submit(sam, {.sql = q2}).ok());  // q2 gone: miss again
  EXPECT_EQ(service->stats().cache_misses, 4u);
  ASSERT_TRUE(service->Submit(sam, {.sql = q3}).ok());  // q3 survived: hit
  EXPECT_EQ(service->stats().cache_hits, 2u);
}

TEST_F(QueryServiceTest, InvalidateCacheForcesReEvaluation) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());
  service->InvalidateCache();
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());
  EXPECT_EQ(service->stats().cache_misses, 2u);
  EXPECT_EQ(service->stats().cache_hits, 0u);
}

TEST_F(QueryServiceTest, StatsSnapshotFormats) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());
  std::string rendered = service->stats().ToString();
  EXPECT_NE(rendered.find("1 served"), std::string::npos);
  EXPECT_NE(rendered.find("hit rate"), std::string::npos);
  EXPECT_NE(rendered.find("latency"), std::string::npos);
}

TEST_F(QueryServiceTest, DestructorDrainsOutstandingWork) {
  std::vector<std::future<Result<QueryOutcome>>> futures;
  {
    auto service = MakeService({.num_workers = 2});
    SessionHandle sam = *service->OpenSession("sam", "analysis");
    for (int i = 0; i < 10; ++i) {
      auto future = service->SubmitAsync(sam, {.sql = kCandidateQuery});
      ASSERT_TRUE(future.ok());
      futures.push_back(std::move(*future));
    }
    // Service destroyed here with requests possibly still queued.
  }
  for (auto& future : futures) {
    Result<QueryOutcome> outcome = future.get();  // never a broken promise
    EXPECT_TRUE(outcome.ok() || outcome.status().IsResourceExhausted());
  }
}

// ---------------------------------------------------------------------------
// Telemetry integration.
// ---------------------------------------------------------------------------

std::vector<std::string> SpanNames(const Trace& trace) {
  std::vector<std::string> names;
  for (const Span& span : trace.spans) names.push_back(span.name);
  return names;
}

bool HasSpan(const Trace& trace, const std::string& name) {
  std::vector<std::string> names = SpanNames(trace);
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST_F(QueryServiceTest, EveryRequestYieldsARetrievableTrace) {
  auto service = MakeService({.num_workers = 1});
  ASSERT_TRUE(service->tracer()->enabled());
  SessionHandle mary = *service->OpenSession("mary", "investment");
  QueryOutcome cold =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});

  ASSERT_NE(cold.trace_id, 0u);
  std::optional<Trace> trace = service->tracer()->Get(cold.trace_id);
  ASSERT_TRUE(trace.has_value());
  EXPECT_GE(trace->spans.size(), 5u) << "got: " << trace->ToString();
  for (const char* name : {"request", "queue-wait", "cache-lookup", "evaluate",
                           "complete", "policy-filter", "solve"}) {
    EXPECT_TRUE(HasSpan(*trace, name)) << name << " missing:\n" << trace->ToString();
  }

  // Warm path: the evaluation comes from the cache, but the trace still has
  // the five named spans the audit trail promises.
  QueryOutcome warm =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  ASSERT_NE(warm.trace_id, cold.trace_id);
  std::optional<Trace> warm_trace = service->tracer()->Get(warm.trace_id);
  ASSERT_TRUE(warm_trace.has_value());
  EXPECT_GE(warm_trace->spans.size(), 5u) << warm_trace->ToString();
  EXPECT_FALSE(HasSpan(*warm_trace, "evaluate")) << warm_trace->ToString();
  EXPECT_TRUE(HasSpan(*warm_trace, "policy-filter"));
}

TEST_F(QueryServiceTest, AuditRingReconstructsEveryServedDecision) {
  auto service = MakeService({.num_workers = 2});
  ASSERT_NE(service->audit(), nullptr);
  ASSERT_TRUE(service->audit()->enabled());
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  SessionHandle mary = *service->OpenSession("mary", "investment");

  // A small session's worth of decisions: different β per session, a cache
  // hit in the middle, a shortfall that engages the solver.
  struct Served {
    SessionHandle* session;
    double fraction;
    QueryOutcome outcome;
  };
  std::vector<Served> served;
  served.push_back({&sam, 0.0, {}});
  served.push_back({&mary, 0.0, {}});
  served.push_back({&mary, 1.0, {}});
  for (Served& s : served) {
    s.outcome = *service->Submit(
        *s.session, {.sql = kCandidateQuery, .required_fraction = s.fraction});
  }

  // Every outcome's audit id resolves to a record that reconstructs the
  // decision: who, for what purpose, which β, against which confidence
  // version, and how many rows each verdict covered.
  for (const Served& s : served) {
    ASSERT_NE(s.outcome.audit_id, 0u);
    std::optional<AuditRecord> record = service->audit()->Get(s.outcome.audit_id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->kind, AuditRecord::Kind::kQuery);
    EXPECT_EQ(record->user, s.session->user);
    EXPECT_EQ(record->purpose, s.session->purpose);
    EXPECT_DOUBLE_EQ(record->beta, s.outcome.policy.threshold);
    EXPECT_EQ(record->confidence_version, catalog_.confidence_version());
    EXPECT_DOUBLE_EQ(record->required_fraction, s.fraction);
    EXPECT_EQ(record->rows_total, s.outcome.intermediate.rows.size());
    EXPECT_EQ(record->rows_released, s.outcome.released.size());
    EXPECT_DOUBLE_EQ(record->released_fraction, s.outcome.released_fraction);
    EXPECT_EQ(record->proposal_needed, s.outcome.proposal.needed);
  }
  // mary's shortfall (required 1.0, released 0) engaged the solver and the
  // record says so.
  EXPECT_TRUE(served[2].outcome.proposal.needed);
  std::optional<AuditRecord> shortfall =
      service->audit()->Get(served[2].outcome.audit_id);
  ASSERT_TRUE(shortfall.has_value());
  EXPECT_TRUE(shortfall->proposal_needed);
  EXPECT_FALSE(shortfall->proposal_algorithm.empty());

  // An accepted proposal lands in the same ring, with the bumped version.
  ASSERT_TRUE(service->Accept(served[2].outcome.proposal).ok());
  std::vector<AuditRecord> all = service->audit()->Snapshot();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().kind, AuditRecord::Kind::kAccept);
  EXPECT_EQ(all.front().confidence_version, catalog_.confidence_version());
}

TEST_F(QueryServiceTest, ProfiledRequestBypassesCacheButPopulatesIt) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");

  QueryOutcome profiled = *service->Submit(
      sam, {.sql = kCandidateQuery, .required_fraction = 0.0, .profile = true});
  ASSERT_NE(profiled.profile, nullptr);
  EXPECT_FALSE(profiled.profile->nodes.empty());
  EXPECT_EQ(profiled.profile->mode,
            ExecutionModeToString(engine_->execution_mode));
  // Bypassing the lookup means no hit/miss was counted...
  EXPECT_EQ(service->stats().cache_hits, 0u);
  EXPECT_EQ(service->stats().cache_misses, 0u);

  // ...but the evaluation was inserted: the next unprofiled request hits,
  // and a cache hit has no execution to profile.
  QueryOutcome warm =
      *service->Submit(sam, {.sql = kCandidateQuery, .required_fraction = 0.0});
  EXPECT_EQ(service->stats().cache_hits, 1u);
  EXPECT_EQ(warm.profile, nullptr);
  EXPECT_EQ(warm.released.size(), profiled.released.size());
}

TEST_F(QueryServiceTest, PolicyFilterSpanCarriesAuditAnnotations) {
  auto service = MakeService({.num_workers = 0});
  SessionHandle mary = *service->OpenSession("mary", "investment");
  QueryOutcome outcome =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  std::optional<Trace> trace = service->tracer()->Get(outcome.trace_id);
  ASSERT_TRUE(trace.has_value());
  for (const Span& span : trace->spans) {
    if (span.name != "policy-filter") continue;
    std::vector<std::string> keys;
    for (const auto& [k, v] : span.annotations) keys.push_back(k);
    EXPECT_NE(std::find(keys.begin(), keys.end(), "beta"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "released"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "blocked"), keys.end());
    return;
  }
  FAIL() << "no policy-filter span in:\n" << trace->ToString();
}

TEST_F(QueryServiceTest, RegistryCountersMatchSnapshot) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());

  // The legacy snapshot API reads the same registry instruments.
  ServiceStatsSnapshot snapshot = service->stats();
  TelemetryRegistry* registry = service->telemetry();
  EXPECT_EQ(registry->GetCounter("pcqe_service_requests_submitted_total")->value(),
            snapshot.submitted);
  EXPECT_EQ(registry->GetCounter("pcqe_service_requests_served_total")->value(),
            snapshot.served);
  EXPECT_EQ(registry->GetCounter("pcqe_cache_hits_total")->value(),
            snapshot.cache_hits);
  EXPECT_EQ(snapshot.served, 2u);
  EXPECT_EQ(snapshot.cache_hits, 1u);

  std::string text = service->RenderMetricsText();
  EXPECT_NE(text.find("pcqe_service_requests_served_total 2"), std::string::npos);
  EXPECT_NE(text.find("pcqe_engine_queries_total"), std::string::npos);
  EXPECT_NE(text.find("pcqe_solver_nodes_expanded_total"), std::string::npos);
  EXPECT_NE(text.find("pcqe_service_latency_us_bucket"), std::string::npos);

  std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"pcqe_service_requests_served_total\":2"),
            std::string::npos);
}

TEST_F(QueryServiceTest, AdaptiveSolverLanesExportedAsGauge) {
  auto service = MakeService({.num_workers = 1});
  SessionHandle mary = *service->OpenSession("mary", "investment");
  // required_fraction 1.0 forces a shortfall and thus a solver run.
  ASSERT_TRUE(
      service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0}).ok());
  Gauge* lanes = service->telemetry()->GetGauge("pcqe_service_solver_lanes");
  EXPECT_GE(lanes->value(), 1);
  // A lone in-flight request gets the full hardware budget (capped by the
  // engine's own setting).
  size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_LE(lanes->value(), static_cast<int64_t>(hw));
}

TEST_F(QueryServiceTest, SharedRegistryAcrossEngineAndService) {
  TelemetryRegistry registry;
  Tracer tracer(8);
  engine_->AttachTelemetry(&registry, &tracer);
  ServiceOptions options;
  options.num_workers = 1;
  options.registry = &registry;
  options.tracer = &tracer;
  auto service = MakeService(options);
  EXPECT_EQ(service->telemetry(), &registry);
  EXPECT_EQ(service->tracer(), &tracer);
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  ASSERT_TRUE(service->Submit(sam, {.sql = kCandidateQuery}).ok());
  EXPECT_EQ(registry.GetCounter("pcqe_engine_queries_total")->value(), 1u);
  EXPECT_EQ(tracer.total_recorded(), 1u);
}

TEST_F(QueryServiceTest, ShedWatermarkTripsBeforeQueueOverflow) {
  // Zero workers: the queue never drains, so admission arithmetic is exact.
  // Capacity 8 would admit four requests; the watermark sheds at two queued.
  auto service =
      MakeService({.num_workers = 0, .queue_capacity = 8, .shed_watermark = 2});
  SessionHandle sam = *service->OpenSession("sam", "analysis");
  ASSERT_TRUE(service->SubmitAsync(sam, {.sql = kCandidateQuery}).ok());
  ASSERT_TRUE(service->SubmitAsync(sam, {.sql = kCandidateQuery}).ok());

  auto shed = service->SubmitAsync(sam, {.sql = kCandidateQuery});
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_NE(shed.status().message().find("overloaded"), std::string::npos);

  ServiceStatsSnapshot stats = service->stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 1u);  // shed requests count as rejected too
  EXPECT_EQ(stats.submitted, 2u);
}

TEST_F(QueryServiceTest, DeadlinedSubmitReturnsFeasiblePartialInTime) {
  // The headline anytime contract: a 50ms deadline on a branch-and-bound
  // instance far too large to finish must come back promptly with a
  // feasible plan tagged partial — the primed greedy incumbent at worst.
  //
  // 30 base tuples at confidence 0.1 behind six DISTINCT groups, β = 0.9,
  // δ = 0.02: the exact search space is astronomically larger than 50ms,
  // while one greedy pass is microseconds.
  Table* metrics = *catalog_.CreateTable(
      "Metrics", Schema({{"company", DataType::kString, ""},
                         {"score", DataType::kDouble, ""}}));
  for (int group = 0; group < 6; ++group) {
    for (int row = 0; row < 5; ++row) {
      ASSERT_TRUE(metrics
                      ->Insert({Value::String("corp" + std::to_string(group)),
                                Value::Double(group * 10.0 + row)},
                               0.1, *MakeLinearCost(100.0))
                      .ok());
    }
  }
  engine_->improvement_delta = 0.02;

  auto service = MakeService({.num_workers = 1});
  SessionHandle amy = *service->OpenSession("amy", "audit");
  ServiceRequest request;
  request.sql = "SELECT DISTINCT company FROM metrics";
  request.required_fraction = 1.0;
  request.solver = SolverKind::kHeuristic;
  request.timeout_ms = 50;

  auto started = std::chrono::steady_clock::now();
  Result<QueryOutcome> outcome = service->Submit(amy, request);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  ASSERT_TRUE(outcome->proposal.needed);
  EXPECT_TRUE(outcome->proposal.feasible);
  EXPECT_TRUE(outcome->proposal.partial);
  EXPECT_EQ(outcome->proposal.stop, SolveStop::kDeadline);
  // ~2x the deadline, plus generous scheduler/sanitizer headroom: the
  // solver polls the clock every 1024 node expansions, so even slowed-down
  // builds stop well inside this bound.
  EXPECT_LE(elapsed_ms, 300.0);

  ServiceStatsSnapshot stats = service->stats();
  EXPECT_GE(stats.partial_results, 1u);
  EXPECT_GE(stats.solve_deadline_exceeded, 1u);
}

TEST_F(QueryServiceTest, QueueOverflowLogsAWarning) {
  CapturingLogSink capture;
  LogSink* previous = LogConfig::set_sink(&capture);
  {
    // Zero workers: queued requests never drain, so the second submission
    // overflows a capacity-1 queue.
    auto service = MakeService({.num_workers = 0, .queue_capacity = 1});
    SessionHandle sam = *service->OpenSession("sam", "analysis");
    auto first = service->SubmitAsync(sam, {.sql = kCandidateQuery});
    ASSERT_TRUE(first.ok());
    auto second = service->SubmitAsync(sam, {.sql = kCandidateQuery});
    EXPECT_TRUE(second.status().IsResourceExhausted());
  }
  LogConfig::set_sink(previous);
  EXPECT_TRUE(capture.Contains("queue full"));
}

std::string FreshServiceDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST_F(QueryServiceTest, DurableAcceptSurvivesServiceRestart) {
  std::string dir = FreshServiceDir("svc_durable_restart");
  ServiceOptions options;
  options.num_workers = 1;
  options.durability.dir = dir;

  uint64_t version = 0;
  double improved = 0.0;
  {
    auto service = MakeService(options);
    ASSERT_TRUE(service->durability_status().ok())
        << service->durability_status().ToString();
    SessionHandle mary = *service->OpenSession("mary", "investment");
    QueryOutcome blocked =
        *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
    ASSERT_TRUE(blocked.proposal.needed);
    ASSERT_TRUE(service->Accept(blocked.proposal).ok());
    QueryOutcome after =
        *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
    EXPECT_EQ(after.released.size(), 1u);
    version = catalog_.confidence_version();
    improved = (*catalog_.FindTuple(id03_))->confidence();
  }  // service shuts down; the "machine" below restarts from disk alone

  // A fresh catalog + engine + service over the same directory recovers the
  // accepted state during construction and serves the released row on the
  // very first request.
  Catalog revived_catalog;
  RoleGraph roles;
  ASSERT_TRUE(roles.AddRole("Manager").ok());
  ASSERT_TRUE(roles.AddUser("mary").ok());
  ASSERT_TRUE(roles.AssignRole("mary", "Manager").ok());
  PolicyStore policies;
  ASSERT_TRUE(policies.AddPolicy(roles, {"Manager", "investment", 0.06}).ok());
  PcqeEngine revived_engine(&revived_catalog, std::move(roles), std::move(policies));
  QueryService revived(&revived_engine, options);
  ASSERT_TRUE(revived.durability_status().ok())
      << revived.durability_status().ToString();
  EXPECT_EQ(revived_catalog.confidence_version(), version);
  EXPECT_EQ((*revived_catalog.FindTuple(id03_))->confidence(), improved);
  SessionHandle mary = *revived.OpenSession("mary", "investment");
  QueryOutcome served =
      *revived.Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  EXPECT_EQ(served.released.size(), 1u);
  EXPECT_FALSE(served.proposal.needed);
}

TEST_F(QueryServiceTest, CheckpointAndRecoverRoundTripThroughService) {
  ServiceOptions options;
  options.num_workers = 1;
  options.durability.dir = FreshServiceDir("svc_checkpoint");
  auto service = MakeService(options);
  ASSERT_TRUE(service->durability_status().ok());
  SessionHandle mary = *service->OpenSession("mary", "investment");
  QueryOutcome blocked =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  ASSERT_TRUE(service->Accept(blocked.proposal).ok());
  uint64_t version = catalog_.confidence_version();

  ASSERT_TRUE(service->Checkpoint().ok());
  ASSERT_TRUE(service->Recover().ok());
  EXPECT_EQ(catalog_.confidence_version(), version);
  QueryOutcome served =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  EXPECT_EQ(served.released.size(), 1u);
}

TEST_F(QueryServiceTest, RecoverClearsStaleVersionKeyedCacheEntries) {
  // The cache keys evaluations on (SQL, confidence_version). Recovery can
  // rewind the version and a later write can re-reach the *same* number
  // with different confidences — a pre-recovery entry served then would be
  // silently wrong. Recover() must drop the whole cache.
  ServiceOptions options;
  options.num_workers = 1;
  options.durability.dir = FreshServiceDir("svc_cache_recovery");
  auto service = MakeService(options);
  ASSERT_TRUE(service->durability_status().ok());
  SessionHandle mary = *service->OpenSession("mary", "investment");

  // A durable baseline: one logged accept.
  QueryOutcome blocked =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  ASSERT_TRUE(blocked.proposal.needed);
  ASSERT_TRUE(service->Accept(blocked.proposal).ok());
  uint64_t logged_version = catalog_.confidence_version();

  // An out-of-band, *unlogged* confidence write (version N = logged + 1),
  // then a submission that caches its evaluation keyed at N.
  ASSERT_TRUE(catalog_.SetConfidence(id03_, 0.9).ok());
  QueryOutcome poisoned =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 0.0});
  uint64_t poisoned_version = catalog_.confidence_version();
  ASSERT_EQ(poisoned_version, logged_version + 1);

  // Recovery rewinds to the logged history (the unlogged write is exactly
  // the kind of state a crash loses)...
  ASSERT_TRUE(service->Recover().ok());
  ASSERT_EQ(catalog_.confidence_version(), logged_version);

  // ...and a different unlogged write re-reaches version N with a
  // *different* confidence.
  ASSERT_TRUE(catalog_.SetConfidence(id03_, 0.2).ok());
  ASSERT_EQ(catalog_.confidence_version(), poisoned_version);

  size_t misses_before = service->stats().cache_misses;
  QueryOutcome fresh =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 0.0});
  // Must be a miss — the stale entry cached at the same version number is
  // gone — and the evaluation must reflect 0.2, not the cached 0.9.
  EXPECT_EQ(service->stats().cache_misses, misses_before + 1);
  ASSERT_EQ(fresh.intermediate.rows.size(), poisoned.intermediate.rows.size());
  bool differs = false;
  for (size_t i = 0; i < fresh.intermediate.rows.size(); ++i) {
    differs |= fresh.intermediate.rows[i].confidence !=
               poisoned.intermediate.rows[i].confidence;
  }
  EXPECT_TRUE(differs);

  // The warm path stays correct after recovery: an immediate re-submission
  // hits the fresh entry and serves the same confidences.
  size_t hits_before = service->stats().cache_hits;
  QueryOutcome warm =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 0.0});
  EXPECT_EQ(service->stats().cache_hits, hits_before + 1);
  ASSERT_EQ(warm.intermediate.rows.size(), fresh.intermediate.rows.size());
  for (size_t i = 0; i < warm.intermediate.rows.size(); ++i) {
    EXPECT_EQ(warm.intermediate.rows[i].confidence,
              fresh.intermediate.rows[i].confidence);
  }
}

TEST_F(QueryServiceTest, RecoverInvalidatesConfidenceZoneMaps) {
  // WAL replay restores the *logged* version counter, and later unlogged
  // writes can re-reach the number a pre-recovery zone map was built at —
  // the (rows, version) validity check alone would then trust bounds
  // describing vanished state and skip a chunk that now holds a releasable
  // row. Recover() must drop the confidence index along with the cache.
  ServiceOptions options;
  options.num_workers = 1;
  options.durability.dir = FreshServiceDir("svc_index_recovery");
  auto service = MakeService(options);
  ASSERT_TRUE(service->durability_status().ok());
  SessionHandle amy = *service->OpenSession("amy", "audit");  // β = 0.9
  constexpr const char* kSafeQuery = "SELECT company FROM proposal";

  // An unlogged write, then a pushed query: the zone map is built at
  // version 1 with every confidence ≤ β, so the whole table is skipped.
  ASSERT_TRUE(catalog_.SetConfidence(id03_, 0.35).ok());
  ASSERT_EQ(catalog_.confidence_version(), 1u);
  QueryOutcome skipped =
      *service->Submit(amy, {.sql = kSafeQuery, .required_fraction = 0.0});
  EXPECT_TRUE(skipped.intermediate.pushed_down);
  EXPECT_TRUE(skipped.released.empty());
  EXPECT_GT(skipped.intermediate.vec_stats.pruned_chunks, 0u);

  // Crash-recover (rewinds to version 0), then a different unlogged write
  // re-reaches version 1 — this time with a row above β.
  ASSERT_TRUE(service->Recover().ok());
  ASSERT_EQ(catalog_.confidence_version(), 0u);
  ASSERT_TRUE(catalog_.SetConfidence(id03_, 0.95).ok());
  ASSERT_EQ(catalog_.confidence_version(), 1u);

  // A stale-but-validating map would skip the chunk and lose the row; the
  // rebuilt one scans per-row and releases it.
  QueryOutcome released =
      *service->Submit(amy, {.sql = kSafeQuery, .required_fraction = 0.0});
  EXPECT_EQ(released.released.size(), 1u);
  EXPECT_EQ(released.intermediate.vec_stats.pruned_chunks, 0u);
}

TEST_F(QueryServiceTest, FailedDurabilityOpenDisablesAcceptsNotReads) {
  // Point the storage directory at a regular file: Open must fail.
  std::string dir = FreshServiceDir("svc_durable_broken");
  { std::ofstream(dir) << "not a directory"; }
  ServiceOptions options;
  options.num_workers = 1;
  options.durability.dir = dir + "/sub";
  auto service = MakeService(options);
  EXPECT_FALSE(service->durability_status().ok());

  // Reads still serve; accepts are refused with the open error.
  SessionHandle mary = *service->OpenSession("mary", "investment");
  QueryOutcome blocked =
      *service->Submit(mary, {.sql = kCandidateQuery, .required_fraction = 1.0});
  ASSERT_TRUE(blocked.proposal.needed);
  Status refused = service->Accept(blocked.proposal);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(catalog_.confidence_version(), 0u);
  EXPECT_TRUE(service->Checkpoint().ok() == false);
  EXPECT_TRUE(service->Recover().ok() == false);
}

}  // namespace
}  // namespace pcqe
