// Tests for the solver parallelism layer: the shared thread pool itself,
// and the determinism contract — every solver must produce the same
// solution at parallelism 1 and parallelism 8. Runs under TSan in
// scripts/analyze.sh (same bar as the service stress tests), so the pool,
// the D&C group fan-out and the shared branch-and-bound incumbent are all
// exercised with real concurrency here.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSingleLaneRunsInline) {
  ThreadPool pool(2);
  // In-order execution is part of the lanes<=1 contract.
  std::vector<size_t> visited;
  pool.ParallelFor(64, 1, [&](size_t i) { visited.push_back(i); });
  ASSERT_EQ(visited.size(), 64u);
  for (size_t i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], i);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // More lanes than workers at both levels: the caller-participates design
  // must make progress even with every worker busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(6, 6, [&](size_t) {
    pool.ParallelFor(6, 6, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 36);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionsContiguously) {
  std::vector<char> seen(257, 0);
  SolverParallelism par{4};
  ParallelForChunks(par, seen.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) seen[i] = 1;
  });
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "index " << i;
}

// ---------------------------------------------------------------------------
// Determinism: parallelism 1 vs 8 across seeded workloads.
// ---------------------------------------------------------------------------

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 11};

WorkloadParams SolverParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 120;
  params.num_results = 48;
  params.bases_per_result = 5;
  params.theta = 0.5;
  params.seed = seed;
  return params;
}

/// The telemetry contract: search-effort counters are part of the solver's
/// deterministic output, so every one of them must be bit-identical across
/// lane counts — a drift in any counter means the searches explored
/// different trees and the "same solution" guarantee is luck.
void ExpectSameEffort(const SolverEffort& seq, const SolverEffort& par,
                      uint64_t seed) {
  std::vector<std::pair<const char*, uint64_t>> seq_items = seq.Items();
  std::vector<std::pair<const char*, uint64_t>> par_items = par.Items();
  ASSERT_EQ(seq_items.size(), par_items.size());
  for (size_t i = 0; i < seq_items.size(); ++i) {
    EXPECT_EQ(seq_items[i].second, par_items[i].second)
        << "seed " << seed << " counter " << seq_items[i].first;
  }
  EXPECT_EQ(seq, par) << "seed " << seed;  // catches fields Items() misses
}

void ExpectSameSolution(const IncrementSolution& seq, const IncrementSolution& par,
                        bool bit_identical, uint64_t seed) {
  EXPECT_EQ(seq.feasible, par.feasible) << "seed " << seed;
  ExpectSameEffort(seq.effort, par.effort, seed);
  if (bit_identical) {
    // The parallel path replays the sequential arithmetic on the same
    // values in the same combine order: not just close — equal.
    EXPECT_EQ(seq.total_cost, par.total_cost) << "seed " << seed;
    ASSERT_EQ(seq.new_confidence.size(), par.new_confidence.size());
    for (size_t i = 0; i < seq.new_confidence.size(); ++i) {
      EXPECT_EQ(seq.new_confidence[i], par.new_confidence[i])
          << "seed " << seed << " base " << i;
    }
  } else {
    EXPECT_NEAR(seq.total_cost, par.total_cost, 1e-9) << "seed " << seed;
  }
}

TEST(ParallelDeterminismTest, GreedyIdenticalAt1And8) {
  for (uint64_t seed : kSeeds) {
    IncrementProblem p = *GenerateWorkload(SolverParams(seed)).ToProblem();
    GreedyOptions seq;
    seq.parallelism.threads = 1;
    GreedyOptions par;
    par.parallelism.threads = 8;
    ExpectSameSolution(*SolveGreedy(p, seq), *SolveGreedy(p, par),
                       /*bit_identical=*/true, seed);
  }
}

TEST(ParallelDeterminismTest, DncSingleQueryIdenticalAt1And8) {
  for (uint64_t seed : kSeeds) {
    IncrementProblem p = *GenerateWorkload(SolverParams(seed)).ToProblem();
    DncOptions seq;
    seq.parallelism.threads = 1;
    DncOptions par;
    par.parallelism.threads = 8;
    IncrementSolution s = *SolveDnc(p, seq);
    IncrementSolution l = *SolveDnc(p, par);
    ExpectSameSolution(s, l, /*bit_identical=*/true, seed);
    EXPECT_EQ(s.nodes_explored, l.nodes_explored) << "seed " << seed;
  }
}

TEST(ParallelDeterminismTest, DncMultiQueryIdenticalAt1And8) {
  for (uint64_t seed : kSeeds) {
    WorkloadParams params = SolverParams(seed);
    params.num_results = 30;  // per query
    MultiQueryWorkload w = GenerateMultiQueryWorkload(params, 3);
    IncrementProblem p = *w.ToProblem();
    DncOptions seq;
    seq.parallelism.threads = 1;
    DncOptions par;
    par.parallelism.threads = 8;
    IncrementSolution s = *SolveDnc(p, seq);
    IncrementSolution l = *SolveDnc(p, par);
    ExpectSameSolution(s, l, /*bit_identical=*/true, seed);
    EXPECT_EQ(s.nodes_explored, l.nodes_explored) << "seed " << seed;
  }
}

TEST(ParallelDeterminismTest, HeuristicCostIdenticalAt1And8) {
  for (uint64_t seed : kSeeds) {
    WorkloadParams params;
    params.num_base_tuples = 10;
    params.num_results = 6;
    params.bases_per_result = 5;
    params.or_group_size = 3;
    params.theta = 0.5;
    params.seed = seed;
    IncrementProblem p = *GenerateWorkload(params).ToProblem();
    HeuristicOptions seq;
    seq.parallelism.threads = 1;
    HeuristicOptions par;
    par.parallelism.threads = 8;
    IncrementSolution s = *SolveHeuristic(p, seq);
    IncrementSolution l = *SolveHeuristic(p, par);
    // Both searches run to completion, so both costs are the optimum; the
    // assignment tie-break keeps equal-cost winners deterministic too.
    ASSERT_TRUE(s.search_complete);
    ASSERT_TRUE(l.search_complete);
    ExpectSameSolution(s, l, /*bit_identical=*/false, seed);
    // The legacy nodes_explored field is fed by the effort counter.
    EXPECT_EQ(s.nodes_explored, s.effort.nodes_expanded) << "seed " << seed;
    EXPECT_GT(s.effort.nodes_expanded, 0u) << "seed " << seed;
    Status valid = ValidateSolution(p, l);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
}

TEST(ParallelDeterminismTest, HeuristicGreedyBoundedIdenticalAt1And8) {
  // The Figure 11(d) configuration: greedy primes the incumbent. The
  // external bound plus multi-root workers is the trickiest incumbent
  // interaction, so it gets its own determinism check.
  for (uint64_t seed : kSeeds) {
    WorkloadParams params;
    params.num_base_tuples = 10;
    params.num_results = 6;
    params.bases_per_result = 5;
    params.or_group_size = 3;
    params.theta = 0.5;
    params.seed = seed;
    IncrementProblem p = *GenerateWorkload(params).ToProblem();
    IncrementSolution greedy = *SolveGreedy(p);
    HeuristicOptions seq;
    seq.parallelism.threads = 1;
    seq.initial_upper_bound = greedy.total_cost;
    seq.initial_assignment = greedy.new_confidence;
    HeuristicOptions par = seq;
    par.parallelism.threads = 8;
    IncrementSolution s = *SolveHeuristic(p, seq);
    IncrementSolution l = *SolveHeuristic(p, par);
    ASSERT_TRUE(s.search_complete);
    ASSERT_TRUE(l.search_complete);
    ExpectSameSolution(s, l, /*bit_identical=*/false, seed);
  }
}

TEST(ParallelDeterminismTest, CostBetaStableUnderRepeatedCalls) {
  // The H1 precompute reuses one scratch vector per chunk; a missed restore
  // in `CostBetaScratch` would leak one tuple's probe value into the next
  // call. Walking every tuple twice over the same problem (the second pass
  // in reverse) must reproduce the first pass exactly.
  IncrementProblem p = *GenerateWorkload(SolverParams(9)).ToProblem();
  std::vector<double> first(p.num_base_tuples());
  for (size_t i = 0; i < p.num_base_tuples(); ++i) first[i] = CostBeta(p, i);
  for (size_t i = p.num_base_tuples(); i-- > 0;) {
    EXPECT_EQ(CostBeta(p, i), first[i]) << "base " << i;
  }
}

}  // namespace
}  // namespace pcqe
