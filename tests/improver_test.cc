// Tests for the data-quality improvement component.

#include "improve/improver.h"

#include <gtest/gtest.h>

#include "improve/lead_time.h"

namespace pcqe {
namespace {

class ImproverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* t = *catalog_.CreateTable("t", Schema({{"x", DataType::kInt64, ""}}));
    id_a_ = *t->Insert({Value::Int(1)}, 0.3, *MakeLinearCost(100.0));
    id_b_ = *t->Insert({Value::Int(2)}, 0.4, *MakeLinearCost(100.0), /*max=*/0.8);
  }

  Catalog catalog_;
  BaseTupleId id_a_ = 0, id_b_ = 0;
};

TEST_F(ImproverTest, AppliesAndLogs) {
  QualityImprover improver(&catalog_);
  ASSERT_TRUE(improver.Apply({{id_a_, 0.3, 0.5, 0.0}}).ok());
  EXPECT_DOUBLE_EQ((*catalog_.FindTuple(id_a_))->confidence(), 0.5);
  ASSERT_EQ(improver.log().size(), 1u);
  EXPECT_EQ(improver.log()[0].tuple, id_a_);
  EXPECT_DOUBLE_EQ(improver.log()[0].from, 0.3);
  EXPECT_DOUBLE_EQ(improver.log()[0].to, 0.5);
  EXPECT_NEAR(improver.log()[0].cost, 20.0, 1e-9);  // linear a=100
  EXPECT_NEAR(improver.total_cost_spent(), 20.0, 1e-9);
}

TEST_F(ImproverTest, RejectsUnknownTuple) {
  QualityImprover improver(&catalog_);
  EXPECT_TRUE(improver.Apply({{(99ULL << 32), 0.1, 0.5, 0.0}}).IsNotFound());
  EXPECT_TRUE(improver.log().empty());
}

TEST_F(ImproverTest, RejectsNonIncrease) {
  QualityImprover improver(&catalog_);
  EXPECT_TRUE(improver.Apply({{id_a_, 0.3, 0.3, 0.0}}).IsInvalidArgument());
  EXPECT_TRUE(improver.Apply({{id_a_, 0.3, 0.2, 0.0}}).IsInvalidArgument());
}

TEST_F(ImproverTest, RejectsAboveCeiling) {
  QualityImprover improver(&catalog_);
  EXPECT_TRUE(improver.Apply({{id_b_, 0.4, 0.9, 0.0}}).IsInvalidArgument());
  EXPECT_TRUE(improver.Apply({{id_b_, 0.4, 0.8, 0.0}}).ok());
}

TEST_F(ImproverTest, AllOrNothing) {
  QualityImprover improver(&catalog_);
  // Second action invalid: the first must not have been applied.
  Status s = improver.Apply({{id_a_, 0.3, 0.5, 0.0}, {id_b_, 0.4, 0.95, 0.0}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_DOUBLE_EQ((*catalog_.FindTuple(id_a_))->confidence(), 0.3);
  EXPECT_TRUE(improver.log().empty());
  EXPECT_DOUBLE_EQ(improver.total_cost_spent(), 0.0);
}

TEST_F(ImproverTest, CostUsesActualStoredState) {
  QualityImprover improver(&catalog_);
  // The recorded cost comes from the tuple's own cost function and its
  // confidence at apply time, not from the caller-supplied fields.
  ASSERT_TRUE(improver.Apply({{id_a_, 0.0, 0.4, 12345.0}}).ok());
  EXPECT_NEAR(improver.log()[0].cost, 10.0, 1e-9);  // 0.3 -> 0.4 at a=100
  EXPECT_DOUBLE_EQ(improver.log()[0].from, 0.3);
}

TEST_F(ImproverTest, SequentialImprovementsAccumulate) {
  QualityImprover improver(&catalog_);
  ASSERT_TRUE(improver.Apply({{id_a_, 0.3, 0.4, 0.0}}).ok());
  ASSERT_TRUE(improver.Apply({{id_a_, 0.4, 0.6, 0.0}}).ok());
  EXPECT_DOUBLE_EQ((*catalog_.FindTuple(id_a_))->confidence(), 0.6);
  EXPECT_EQ(improver.log().size(), 2u);
  EXPECT_NEAR(improver.total_cost_spent(), 30.0, 1e-9);
}

TEST(LeadTimeTest, DurationModel) {
  AcquisitionTimeModel m{60.0, 600.0};  // 1 min setup + 10 min per unit
  EXPECT_DOUBLE_EQ(m.Duration(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.Duration(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(m.Duration(0.1), 120.0);
  EXPECT_DOUBLE_EQ(m.Duration(1.0), 660.0);
}

TEST(LeadTimeTest, PerTupleOverrides) {
  LeadTimeEstimator est({10.0, 100.0});
  est.SetModel(7, {1000.0, 0.0});
  EXPECT_DOUBLE_EQ(est.ActionSeconds({1, 0.2, 0.4, 0.0}), 30.0);    // default
  EXPECT_DOUBLE_EQ(est.ActionSeconds({7, 0.2, 0.4, 0.0}), 1000.0);  // override
}

TEST(LeadTimeTest, SequentialIsSum) {
  LeadTimeEstimator est({0.0, 100.0});
  std::vector<IncrementAction> plan = {{1, 0.1, 0.3, 0.0}, {2, 0.2, 0.5, 0.0}};
  EXPECT_NEAR(*est.EstimateSeconds(plan, 1), 20.0 + 30.0, 1e-9);
}

TEST(LeadTimeTest, ParallelUsesLptMakespan) {
  LeadTimeEstimator est({0.0, 100.0});
  // Durations 50, 30, 20, 20: LPT on 2 workers -> {50, 20} vs {30, 20} -> 70.
  std::vector<IncrementAction> plan = {{1, 0.0, 0.5, 0.0},
                                       {2, 0.0, 0.3, 0.0},
                                       {3, 0.0, 0.2, 0.0},
                                       {4, 0.0, 0.2, 0.0}};
  EXPECT_NEAR(*est.EstimateSeconds(plan, 2), 70.0, 1e-9);
  // Enough workers: makespan = longest single action.
  EXPECT_NEAR(*est.EstimateSeconds(plan, 8), 50.0, 1e-9);
}

TEST(LeadTimeTest, ZeroWorkersRejected) {
  LeadTimeEstimator est;
  EXPECT_TRUE(est.EstimateSeconds({}, 0).status().IsInvalidArgument());
}

TEST(LeadTimeTest, EmptyPlanIsInstant) {
  LeadTimeEstimator est({100.0, 100.0});
  EXPECT_DOUBLE_EQ(*est.EstimateSeconds({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(*est.EstimateSeconds({}, 4), 0.0);
}

TEST(LeadTimeTest, ParallelNeverBeatsCriticalPathNorSequential) {
  LeadTimeEstimator est({5.0, 50.0});
  std::vector<IncrementAction> plan;
  for (int i = 0; i < 9; ++i) {
    plan.push_back({static_cast<BaseTupleId>(i), 0.0, 0.1 * (i + 1), 0.0});
  }
  double seq = *est.EstimateSeconds(plan, 1);
  double longest = est.ActionSeconds(plan.back());
  for (size_t w : {2u, 3u, 5u, 16u}) {
    double t = *est.EstimateSeconds(plan, w);
    EXPECT_LE(t, seq + 1e-9);
    EXPECT_GE(t, longest - 1e-9);
  }
}

}  // namespace
}  // namespace pcqe
