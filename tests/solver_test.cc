// Tests for the strategy solvers: brute force, heuristic B&B, greedy, D&C.

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "strategy/brute_force.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

/// The paper's running instance: result (t2 | t3) & t13 with β = 0.06.
/// Raising t3 by one δ (cost 10) is the provably cheapest fix.
struct RunningExample {
  std::shared_ptr<LineageArena> arena = std::make_shared<LineageArena>();
  LineageRef result;
  std::vector<BaseTupleSpec> specs;

  RunningExample() {
    result = arena->And(arena->Or(arena->Var(2), arena->Var(3)), arena->Var(13));
    specs = {
        {2, 0.3, 1.0, *MakeLinearCost(1000.0)},
        {3, 0.4, 1.0, *MakeLinearCost(100.0)},
        {13, 0.1, 1.0, *MakeLinearCost(10000.0)},
    };
  }

  IncrementProblem Problem(double beta = 0.06) const {
    ProblemOptions options;
    options.beta = beta;
    options.delta = 0.1;
    return *IncrementProblem::BuildSingle(arena, {result}, specs, 1, options);
  }
};

void ExpectValid(const IncrementProblem& p, const IncrementSolution& s) {
  Status v = ValidateSolution(p, s);
  EXPECT_TRUE(v.ok()) << v.ToString();
}

TEST(BruteForceTest, FindsPaperOptimum) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveBruteForce(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
  EXPECT_NEAR(s.total_cost, 10.0, 1e-9);
  auto actions = s.Actions(p);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].base_tuple, 3u);
  EXPECT_NEAR(actions[0].to, 0.5, 1e-9);
}

TEST(BruteForceTest, ZeroCostWhenAlreadySatisfied) {
  RunningExample ex;
  IncrementProblem p = ex.Problem(/*beta=*/0.01);  // 0.058 already clears
  IncrementSolution s = *SolveBruteForce(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_NEAR(s.total_cost, 0.0, 1e-12);
  EXPECT_TRUE(s.Actions(p).empty());
}

TEST(BruteForceTest, BudgetEnforced) {
  WorkloadParams params;
  params.num_base_tuples = 20;
  params.num_results = 8;
  params.bases_per_result = 5;
  params.seed = 1;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  BruteForceOptions options;
  options.max_assignments = 1000;
  EXPECT_TRUE(SolveBruteForce(p, options).status().IsResourceExhausted());
}

TEST(HeuristicTest, MatchesPaperOptimum) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveHeuristic(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
  EXPECT_TRUE(s.search_complete);
  EXPECT_NEAR(s.total_cost, 10.0, 1e-9);
}

TEST(HeuristicTest, EveryToggleComboStaysOptimal) {
  // H1-H4 are pruning heuristics: they must never change the optimum.
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  for (int mask = 0; mask < 16; ++mask) {
    HeuristicOptions options;
    options.use_h1_ordering = mask & 1;
    options.use_h2 = mask & 2;
    options.use_h3 = mask & 4;
    options.use_h4 = mask & 8;
    IncrementSolution s = *SolveHeuristic(p, options);
    EXPECT_TRUE(s.feasible) << "mask " << mask;
    EXPECT_NEAR(s.total_cost, 10.0, 1e-9) << "mask " << mask;
  }
}

TEST(HeuristicTest, HeuristicsReduceExploredNodes) {
  WorkloadParams params;
  params.num_base_tuples = 8;
  params.num_results = 5;
  params.bases_per_result = 4;
  params.or_group_size = 4;
  params.theta = 0.6;
  params.seed = 3;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();

  // One lane: node counts under multi-root search depend on which worker
  // lowers the incumbent first, so the comparison pins both runs sequential.
  HeuristicOptions naive;
  naive.parallelism.threads = 1;
  naive.use_h1_ordering = naive.use_h2 = naive.use_h3 = naive.use_h4 = false;
  IncrementSolution s_naive = *SolveHeuristic(p, naive);
  HeuristicOptions all;
  all.parallelism.threads = 1;
  IncrementSolution s_all = *SolveHeuristic(p, all);
  ASSERT_TRUE(s_naive.feasible);
  ASSERT_TRUE(s_all.feasible);
  EXPECT_NEAR(s_naive.total_cost, s_all.total_cost, 1e-6);
  EXPECT_LT(s_all.nodes_explored, s_naive.nodes_explored);
}

TEST(HeuristicTest, GreedyBoundSpeedsSearch) {
  WorkloadParams params;
  params.num_base_tuples = 8;
  params.num_results = 5;
  params.bases_per_result = 4;
  params.or_group_size = 4;
  params.theta = 0.6;
  params.seed = 5;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();

  IncrementSolution greedy = *SolveGreedy(p);
  ASSERT_TRUE(greedy.feasible);

  // Sequential lanes: see HeuristicsReduceExploredNodes.
  HeuristicOptions unbounded_options;
  unbounded_options.parallelism.threads = 1;
  IncrementSolution unbounded = *SolveHeuristic(p, unbounded_options);
  HeuristicOptions bounded_options;
  bounded_options.parallelism.threads = 1;
  bounded_options.initial_upper_bound = greedy.total_cost;
  bounded_options.initial_assignment = greedy.new_confidence;
  IncrementSolution bounded = *SolveHeuristic(p, bounded_options);
  EXPECT_TRUE(bounded.feasible);
  EXPECT_NEAR(bounded.total_cost, unbounded.total_cost, 1e-6);
  EXPECT_LE(bounded.nodes_explored, unbounded.nodes_explored);
}

TEST(HeuristicTest, InfeasibleProblemReportsInfeasible) {
  // Result is an AND with one tuple capped below what β requires.
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->And(arena->Var(1), arena->Var(2));
  std::vector<BaseTupleSpec> specs = {{1, 0.1, 0.3, nullptr}, {2, 0.1, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.5;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, options);
  IncrementSolution s = *SolveHeuristic(p);
  EXPECT_FALSE(s.feasible);
  ExpectValid(p, s);
}

TEST(HeuristicTest, RejectsNonMonotoneProblem) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->And(arena->Var(1), arena->Not(arena->Var(2)));
  std::vector<BaseTupleSpec> specs = {{1, 0.4, 1.0, nullptr}, {2, 0.1, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.3;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, options);
  EXPECT_TRUE(SolveHeuristic(p).status().IsInvalidArgument());
}

TEST(HeuristicTest, NodeBudgetReturnsIncomplete) {
  WorkloadParams params;
  params.num_base_tuples = 12;
  params.num_results = 8;
  params.bases_per_result = 6;
  params.or_group_size = 2;
  params.seed = 7;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  HeuristicOptions options;
  options.max_nodes = 50;
  IncrementSolution s = *SolveHeuristic(p, options);
  EXPECT_FALSE(s.search_complete);
  ExpectValid(p, s);
}

TEST(HeuristicTest, CostBetaMatchesSingleTupleFix) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  // t3 alone: 0.4 -> 0.5 gives 0.065 > 0.06; costβ = 10.
  EXPECT_NEAR(CostBeta(p, *p.BaseIndexOf(3)), 10.0, 1e-9);
  // t2 alone: 0.3 -> 0.4 gives 0.064 > 0.06; costβ = 100.
  EXPECT_NEAR(CostBeta(p, *p.BaseIndexOf(2)), 100.0, 1e-9);
  // t13 alone: 0.1 -> 0.2 gives 0.116 > 0.06; costβ = 1000.
  EXPECT_NEAR(CostBeta(p, *p.BaseIndexOf(13)), 1000.0, 1e-9);
}

TEST(GreedyTest, SolvesRunningExample) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveGreedy(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
  // Greedy picks t3 (best ΔF per cost) and needs exactly one step.
  EXPECT_NEAR(s.total_cost, 10.0, 1e-9);
  EXPECT_EQ(s.algorithm, "greedy");
}

TEST(GreedyTest, TwoPhaseNeverCostsMoreThanOnePhase) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.num_base_tuples = 60;
    params.num_results = 30;
    params.bases_per_result = 5;
    params.seed = seed;
    Workload w = GenerateWorkload(params);
    IncrementProblem p = *w.ToProblem();

    GreedyOptions one_phase;
    one_phase.two_phase = false;
    IncrementSolution s1 = *SolveGreedy(p, one_phase);
    IncrementSolution s2 = *SolveGreedy(p);
    ExpectValid(p, s1);
    ExpectValid(p, s2);
    EXPECT_EQ(s1.feasible, s2.feasible) << "seed " << seed;
    if (s1.feasible) {
      EXPECT_LE(s2.total_cost, s1.total_cost + 1e-9) << "seed " << seed;
    }
  }
}

TEST(GreedyTest, PaperLiteralGainModeAlsoSolves) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  GreedyOptions options;
  options.gain_mode = GainMode::kRawAll;
  IncrementSolution s = *SolveGreedy(p, options);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
}

TEST(GreedyTest, InfeasibleReturnsBestEffort) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->And(arena->Var(1), arena->Var(2));
  std::vector<BaseTupleSpec> specs = {{1, 0.1, 0.3, nullptr}, {2, 0.1, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.5;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, options);
  IncrementSolution s = *SolveGreedy(p);
  EXPECT_FALSE(s.feasible);
  ExpectValid(p, s);
}

TEST(GreedyTest, StalledZeroDerivativeProblemStillProgresses) {
  // F = t1 AND t2 with both at confidence 0: every single δ step has
  // ΔF = 0, which stalls naive gain greedy. The fallback path must still
  // reach feasibility.
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->And(arena->Var(1), arena->Var(2));
  std::vector<BaseTupleSpec> specs = {{1, 0.0, 1.0, nullptr}, {2, 0.0, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.5;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, options);
  IncrementSolution s = *SolveGreedy(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
}

TEST(GreedyTest, RefineDownRemovesRedundantIncrements) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  ConfidenceState state(p);
  // Overshoot: raise both t2 and t3 far beyond what is needed.
  state.SetProb(*p.BaseIndexOf(2), 0.8);
  state.SetProb(*p.BaseIndexOf(3), 0.9);
  ASSERT_TRUE(state.Feasible());
  double before = state.total_cost();
  RefineDown(&state, GainMode::kCappedUnsatisfied);
  EXPECT_TRUE(state.Feasible());
  EXPECT_LT(state.total_cost(), before);
}

TEST(DncTest, SolvesRunningExample) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveDnc(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.algorithm, "dnc");
  EXPECT_NEAR(s.total_cost, 10.0, 1e-9);  // tiny group gets the exact pass
}

TEST(DncTest, FeasibleOnClusteredWorkload) {
  WorkloadParams params;
  params.num_base_tuples = 200;
  params.num_results = 80;
  params.bases_per_result = 5;
  params.seed = 11;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  IncrementSolution s = *SolveDnc(p);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
}

TEST(DncTest, CostCompetitiveWithGreedy) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    WorkloadParams params;
    params.num_base_tuples = 150;
    params.num_results = 60;
    params.bases_per_result = 5;
    params.seed = seed;
    Workload w = GenerateWorkload(params);
    IncrementProblem p = *w.ToProblem();
    IncrementSolution greedy = *SolveGreedy(p);
    IncrementSolution dnc = *SolveDnc(p);
    ASSERT_TRUE(greedy.feasible);
    ASSERT_TRUE(dnc.feasible);
    // Both are approximations; D&C must stay within 2x of greedy (it is
    // usually at or below greedy thanks to the per-group exact passes).
    EXPECT_LT(dnc.total_cost, greedy.total_cost * 2.0 + 1e-9) << "seed " << seed;
  }
}

TEST(DncTest, AlreadySatisfiedShortCircuits) {
  RunningExample ex;
  IncrementProblem p = ex.Problem(/*beta=*/0.01);
  IncrementSolution s = *SolveDnc(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_NEAR(s.total_cost, 0.0, 1e-12);
}

TEST(MultiQueryTest, AllSolversSatisfyEveryQuery) {
  // Two queries sharing base tuples; each requires one result.
  auto arena = std::make_shared<LineageArena>();
  LineageRef q0r0 = arena->And(arena->Var(1), arena->Var(2));
  LineageRef q0r1 = arena->Var(3);
  LineageRef q1r0 = arena->And(arena->Var(2), arena->Var(3));
  LineageRef q1r1 = arena->Var(4);
  std::vector<BaseTupleSpec> specs = {{1, 0.2, 1.0, *MakeLinearCost(10.0)},
                                      {2, 0.2, 1.0, *MakeLinearCost(20.0)},
                                      {3, 0.2, 1.0, *MakeLinearCost(30.0)},
                                      {4, 0.2, 1.0, *MakeLinearCost(5.0)}};
  ProblemOptions options;
  options.beta = 0.4;
  IncrementProblem p = *IncrementProblem::Build(arena, {q0r0, q0r1, q1r0, q1r1},
                                                {0, 0, 1, 1}, {1, 1}, specs, options);

  IncrementSolution brute = *SolveBruteForce(p);
  IncrementSolution heuristic = *SolveHeuristic(p);
  IncrementSolution greedy = *SolveGreedy(p);
  IncrementSolution dnc = *SolveDnc(p);
  for (const IncrementSolution* s : {&brute, &heuristic, &greedy, &dnc}) {
    ExpectValid(p, *s);
    EXPECT_TRUE(s->feasible) << s->algorithm;
  }
  // Heuristic is exact: must match brute force.
  EXPECT_NEAR(heuristic.total_cost, brute.total_cost, 1e-9);
  // Approximations never beat the optimum.
  EXPECT_GE(greedy.total_cost, brute.total_cost - 1e-9);
  EXPECT_GE(dnc.total_cost, brute.total_cost - 1e-9);
}

TEST(AnytimeTest, PreExpiredDeadlineReturnsValidatedPartial) {
  // A deadline that has already passed: every deadline-aware solver must
  // return a clean, grid-valid anytime result tagged partial — never an
  // error, never a fabricated completion claim.
  WorkloadParams params;
  params.num_base_tuples = 20;
  params.num_results = 10;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.seed = 5;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  Deadline expired = Deadline::AfterMillis(-1);

  GreedyOptions greedy_options;
  greedy_options.deadline = expired;
  IncrementSolution greedy = *SolveGreedy(p, greedy_options);
  ExpectValid(p, greedy);
  EXPECT_TRUE(greedy.partial);
  EXPECT_EQ(greedy.stop, SolveStop::kDeadline);
  EXPECT_FALSE(greedy.search_complete);

  DncOptions dnc_options;
  dnc_options.deadline = expired;
  IncrementSolution dnc = *SolveDnc(p, dnc_options);
  ExpectValid(p, dnc);
  EXPECT_TRUE(dnc.partial);
  EXPECT_EQ(dnc.stop, SolveStop::kDeadline);

  HeuristicOptions heuristic_options;
  heuristic_options.deadline = expired;
  IncrementSolution heuristic = *SolveHeuristic(p, heuristic_options);
  ExpectValid(p, heuristic);
  EXPECT_TRUE(heuristic.partial);
  EXPECT_EQ(heuristic.stop, SolveStop::kDeadline);
}

TEST(AnytimeTest, DncTightDeadlineFallsBackToFeasibleGreedyPlan) {
  // The old ROADMAP bug: a bare kDnc under a very tight deadline stopped
  // mid-raise and returned an *infeasible* merged partial even though a
  // feasible plan was one greedy pass away. SolveDnc now primes with the
  // deadline-bounded greedy pass (as the engine pressure path does for
  // kHeuristic) and falls back to that incumbent when the fill is cut off
  // before feasibility. The injected expiry makes "cut off from the first
  // wave" deterministic regardless of machine speed, while the real 5 ms
  // budget — orders of magnitude more than greedy needs at this scale —
  // lets the primer finish.
  WorkloadParams params;
  params.num_base_tuples = 20;
  params.num_results = 10;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.seed = 5;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  ASSERT_TRUE(SolveGreedy(p)->feasible);  // the incumbent the fallback keeps

  FaultInjector::Global().Arm(fault_sites::kDncDeadline,
                              FaultInjector::SiteConfig{});
  DncOptions options;
  options.deadline = Deadline::AfterMillis(5);
  Result<IncrementSolution> dnc = SolveDnc(p, options);
  FaultInjector::Global().DisarmAll();

  ASSERT_TRUE(dnc.ok()) << dnc.status().ToString();
  ExpectValid(p, *dnc);
  EXPECT_TRUE(dnc->feasible);
  EXPECT_TRUE(dnc->partial);
  EXPECT_EQ(dnc->stop, SolveStop::kDeadline);
  EXPECT_FALSE(dnc->search_complete);
  EXPECT_EQ(dnc->algorithm, "dnc");
}

TEST(AnytimeTest, CancelTokenStopsEverySolver) {
  WorkloadParams params;
  params.num_base_tuples = 20;
  params.num_results = 10;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.seed = 5;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  CancelToken token;
  token.RequestCancel();  // pre-cancelled: observed at the first poll

  GreedyOptions greedy_options;
  greedy_options.cancel = &token;
  IncrementSolution greedy = *SolveGreedy(p, greedy_options);
  ExpectValid(p, greedy);
  EXPECT_TRUE(greedy.partial);
  EXPECT_EQ(greedy.stop, SolveStop::kCancelled);

  DncOptions dnc_options;
  dnc_options.cancel = &token;
  IncrementSolution dnc = *SolveDnc(p, dnc_options);
  ExpectValid(p, dnc);
  EXPECT_TRUE(dnc.partial);
  EXPECT_EQ(dnc.stop, SolveStop::kCancelled);

  HeuristicOptions heuristic_options;
  heuristic_options.cancel = &token;
  IncrementSolution heuristic = *SolveHeuristic(p, heuristic_options);
  ExpectValid(p, heuristic);
  EXPECT_TRUE(heuristic.partial);
  EXPECT_EQ(heuristic.stop, SolveStop::kCancelled);
}

TEST(AnytimeTest, HeuristicDeadlineKeepsBestIncumbentFound) {
  // Seed the search with a feasible incumbent, then expire immediately: the
  // anytime result is exactly that incumbent — feasible, partial, validated.
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution greedy = *SolveGreedy(p);
  ASSERT_TRUE(greedy.feasible);

  HeuristicOptions options;
  options.deadline = Deadline::AfterMillis(-1);
  options.initial_upper_bound = greedy.total_cost;
  options.initial_assignment = greedy.new_confidence;
  IncrementSolution s = *SolveHeuristic(p, options);
  ExpectValid(p, s);
  EXPECT_TRUE(s.feasible);
  EXPECT_TRUE(s.partial);
  EXPECT_NEAR(s.total_cost, greedy.total_cost, 1e-9);
}

TEST(AnytimeTest, GenerousDeadlineDoesNotChangeTheSolve) {
  // A deadline nowhere near expiry must not perturb the result: same cost,
  // same completion claim as the un-deadlined solve.
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution plain = *SolveGreedy(p);

  GreedyOptions options;
  options.deadline = Deadline::AfterSeconds(300.0);
  IncrementSolution timed = *SolveGreedy(p, options);
  EXPECT_FALSE(timed.partial);
  EXPECT_EQ(timed.stop, SolveStop::kComplete);
  EXPECT_DOUBLE_EQ(timed.total_cost, plain.total_cost);
  EXPECT_EQ(timed.new_confidence, plain.new_confidence);
}

TEST(SolutionTest, ActionsListOnlyRealIncrements) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveHeuristic(p);
  auto actions = s.Actions(p);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].base_tuple, 3u);
  EXPECT_NEAR(actions[0].from, 0.4, 1e-9);
  EXPECT_NEAR(actions[0].to, 0.5, 1e-9);
  EXPECT_NEAR(actions[0].cost, 10.0, 1e-9);
  std::string text = s.ToString(p);
  EXPECT_NE(text.find("tuple 3"), std::string::npos);
}

TEST(SolutionTest, ValidateCatchesCorruption) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  IncrementSolution s = *SolveHeuristic(p);
  ASSERT_TRUE(ValidateSolution(p, s).ok());
  IncrementSolution wrong_cost = s;
  wrong_cost.total_cost += 5.0;
  EXPECT_TRUE(ValidateSolution(p, wrong_cost).IsInternal());
  IncrementSolution lowered = s;
  lowered.new_confidence[0] = 0.0;
  EXPECT_TRUE(ValidateSolution(p, lowered).IsInternal());
  IncrementSolution wrong_size = s;
  wrong_size.new_confidence.pop_back();
  EXPECT_TRUE(ValidateSolution(p, wrong_size).IsInternal());
}

}  // namespace
}  // namespace pcqe
