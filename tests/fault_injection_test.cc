// Fault-injection coverage: every registered probe site is reachable, every
// injected failure surfaces as a clean `Status` (no crash, no leaked lock,
// no policy-violating row), and injected deadline expiries produce
// `partial`-tagged anytime results that still validate.
//
// The replay trick used for the deadline sites: arm the site with
// `fire_after = UINT64_MAX` (never fires, only counts), run once to learn
// the probe count n, then re-arm with `fire_after = n - 1` so the *final*
// poll of the solve fires — at that point the solver state is fully refined,
// so the anytime contract (feasible + partial) is checkable exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "service/query_service.h"
#include "storage/storage_manager.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "strategy/solution.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

/// The running-example catalog behind an engine, plus `DisarmAll` teardown so
/// no armed site leaks into later tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* proposal = *catalog_.CreateTable(
        "Proposal", Schema({{"company", DataType::kString, ""},
                            {"proposal", DataType::kString, ""},
                            {"funding", DataType::kDouble, ""}}));
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("AlphaTech"), Value::String("expansion"),
                              Value::Double(2e6)},
                             0.5)
                    .ok());
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("BlueSky"), Value::String("marketing"),
                              Value::Double(8e5)},
                             0.3, *MakeLinearCost(1000.0))
                    .ok());
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("BlueSky"), Value::String("research"),
                              Value::Double(5e5)},
                             0.4, *MakeLinearCost(100.0))
                    .ok());
    Table* info = *catalog_.CreateTable(
        "CompanyInfo",
        Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
    ASSERT_TRUE(
        info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8).ok());
    ASSERT_TRUE(info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                             *MakeLinearCost(10000.0))
                    .ok());

    RoleGraph roles;
    ASSERT_TRUE(roles.AddRole("Manager").ok());
    ASSERT_TRUE(roles.AddUser("mary").ok());
    ASSERT_TRUE(roles.AssignRole("mary", "Manager").ok());
    PolicyStore policies;
    ASSERT_TRUE(policies.AddPolicy(roles, {"Manager", "investment", 0.06}).ok());
    engine_ = std::make_unique<PcqeEngine>(&catalog_, std::move(roles),
                                           std::move(policies));
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  QueryRequest MaryRequest() {
    QueryRequest request;
    request.sql = kCandidateQuery;
    request.user = "mary";
    request.purpose = "investment";
    request.required_fraction = 1.0;
    return request;
  }

  Catalog catalog_;
  std::unique_ptr<PcqeEngine> engine_;
};

/// A medium monotone instance with enough greedy iterations and D&C groups
/// for the deadline probes to be polled repeatedly.
WorkloadParams MediumParams() {
  WorkloadParams params;
  params.num_base_tuples = 40;
  params.num_results = 20;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.beta = 0.4;
  params.theta = 0.6;
  params.delta = 0.25;
  params.seed = 7;
  return params;
}

/// Small enough for the branch-and-bound search to finish instantly.
WorkloadParams SmallParams() {
  WorkloadParams params;
  params.num_base_tuples = 6;
  params.num_results = 5;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.beta = 0.4;
  params.theta = 0.6;
  params.delta = 0.25;
  params.seed = 11;
  return params;
}

FaultInjector::SiteConfig CountOnly() {
  FaultInjector::SiteConfig config;
  config.fire_after = UINT64_MAX;  // never fires, only counts probes
  return config;
}

FaultInjector::SiteConfig SyntheticOutage() {
  FaultInjector::SiteConfig config;
  config.message = "synthetic outage";
  return config;
}

TEST_F(FaultInjectionTest, KnownSitesEnumeratesEveryProbePoint) {
  const std::vector<const char*>& sites = FaultInjector::KnownSites();
  EXPECT_EQ(sites.size(), 17u);
  std::set<std::string> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size());
}

TEST_F(FaultInjectionTest, EveryRegisteredSiteIsReachable) {
  FaultInjector& injector = FaultInjector::Global();
  for (const char* site : FaultInjector::KnownSites()) {
    injector.Arm(site, CountOnly());
  }

  // Solver sites, straight on generated problems (all three solvers).
  Workload medium = GenerateWorkload(MediumParams());
  IncrementProblem medium_problem = *medium.ToProblem();
  ASSERT_TRUE(SolveGreedy(medium_problem).ok());
  ASSERT_TRUE(SolveDnc(medium_problem).ok());
  Workload small = GenerateWorkload(SmallParams());
  IncrementProblem small_problem = *small.ToProblem();
  ASSERT_TRUE(SolveHeuristic(small_problem).ok());

  // Storage sites: opening a fresh directory checkpoints (checkpoint +
  // manifest probes), the durable accept below logs (append + sync), and
  // the final recovery replays.
  std::string dir = ::testing::TempDir() + "/fault_site_sweep";
  std::filesystem::remove_all(dir);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog_).ok());
  engine_->AttachStorage(&storage);

  // Engine + service sites, through a full request + accept cycle.
  QueryService service(engine_.get(), {.num_workers = 1});
  SessionHandle mary = *service.OpenSession("mary", "investment");
  ServiceRequest request;
  request.sql = kCandidateQuery;
  request.required_fraction = 1.0;
  Result<QueryOutcome> outcome = service.Submit(mary, request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->proposal.needed);
  ASSERT_TRUE(service.Accept(outcome->proposal).ok());
  // β-pushdown qualification (fraction 0, safe shape, β > 0) rebuilds the
  // confidence zone map, probing query.index_rebuild.
  ServiceRequest pushed;
  pushed.sql = "SELECT company FROM proposal";
  pushed.required_fraction = 0.0;
  ASSERT_TRUE(service.Submit(mary, pushed).ok());
  service.Shutdown();
  ASSERT_TRUE(storage.Recover().ok());
  engine_->AttachStorage(nullptr);

  for (const char* site : FaultInjector::KnownSites()) {
    EXPECT_GT(injector.hits(site), 0u) << "site never probed: " << site;
  }
}

TEST_F(FaultInjectionTest, SolverErrorSitesPropagateStatusAndRecover) {
  struct Case {
    const char* site;
    Result<IncrementSolution> (*solve)(const IncrementProblem&);
    bool small;
  };
  const Case cases[] = {
      {fault_sites::kHeuristicWave,
       +[](const IncrementProblem& p) { return SolveHeuristic(p); }, true},
      {fault_sites::kGreedySolve,
       +[](const IncrementProblem& p) { return SolveGreedy(p); }, false},
      {fault_sites::kDncGroup,
       +[](const IncrementProblem& p) { return SolveDnc(p); }, false},
  };
  Workload medium = GenerateWorkload(MediumParams());
  IncrementProblem medium_problem = *medium.ToProblem();
  Workload small = GenerateWorkload(SmallParams());
  IncrementProblem small_problem = *small.ToProblem();
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    const IncrementProblem& problem = c.small ? small_problem : medium_problem;
    FaultInjector::Global().Arm(c.site, SyntheticOutage());
    Result<IncrementSolution> failed = c.solve(problem);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
    EXPECT_NE(failed.status().message().find("synthetic outage"), std::string::npos);
    EXPECT_GT(FaultInjector::Global().hits(c.site), 0u);

    // Disarm and re-run: no leaked lock or poisoned state survives.
    FaultInjector::Global().Disarm(c.site);
    Result<IncrementSolution> recovered = c.solve(problem);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(ValidateSolution(problem, *recovered).ok());
    EXPECT_TRUE(recovered->feasible);
  }
}

TEST_F(FaultInjectionTest, GreedyInjectedDeadlineYieldsFeasiblePartial) {
  Workload w = GenerateWorkload(MediumParams());
  IncrementProblem problem = *w.ToProblem();
  FaultInjector& injector = FaultInjector::Global();

  injector.Arm(fault_sites::kGreedyDeadline, CountOnly());
  Result<IncrementSolution> full = SolveGreedy(problem);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->feasible);
  ASSERT_FALSE(full->partial);
  uint64_t probes = injector.hits(fault_sites::kGreedyDeadline);
  ASSERT_GT(probes, 0u);

  // Fire at the very last poll: both phases have run, so the state is
  // feasible and fully refined — only the completion claim is lost.
  FaultInjector::SiteConfig config;
  config.fire_after = probes - 1;
  injector.Arm(fault_sites::kGreedyDeadline, config);
  Result<IncrementSolution> partial = SolveGreedy(problem);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(ValidateSolution(problem, *partial).ok());
  EXPECT_TRUE(partial->feasible);
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->stop, SolveStop::kDeadline);
  EXPECT_FALSE(partial->search_complete);
}

TEST_F(FaultInjectionTest, DncInjectedDeadlineYieldsFeasiblePartial) {
  Workload w = GenerateWorkload(MediumParams());
  IncrementProblem problem = *w.ToProblem();
  FaultInjector& injector = FaultInjector::Global();
  DncOptions options;
  options.parallelism = SolverParallelism{1};  // keep the probe order exact

  injector.Arm(fault_sites::kDncDeadline, CountOnly());
  Result<IncrementSolution> full = SolveDnc(problem, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->feasible);
  uint64_t probes = injector.hits(fault_sites::kDncDeadline);
  ASSERT_GT(probes, 0u);

  FaultInjector::SiteConfig config;
  config.fire_after = probes - 1;
  injector.Arm(fault_sites::kDncDeadline, config);
  Result<IncrementSolution> partial = SolveDnc(problem, options);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(ValidateSolution(problem, *partial).ok());
  EXPECT_TRUE(partial->feasible);
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->stop, SolveStop::kDeadline);
}

TEST_F(FaultInjectionTest, HeuristicInjectedDeadlineFallsBackToIncumbent) {
  Workload w = GenerateWorkload(SmallParams());
  IncrementProblem problem = *w.ToProblem();
  Result<IncrementSolution> greedy = SolveGreedy(problem);
  ASSERT_TRUE(greedy.ok() && greedy->feasible);

  // Immediate injected expiry: the search stops before its first wave and
  // must hand back the externally supplied incumbent, tagged partial.
  FaultInjector::Global().Arm(fault_sites::kHeuristicDeadline, {});
  HeuristicOptions options;
  options.initial_upper_bound = greedy->total_cost;
  options.initial_assignment = greedy->new_confidence;
  Result<IncrementSolution> partial = SolveHeuristic(problem, options);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(ValidateSolution(problem, *partial).ok());
  EXPECT_TRUE(partial->feasible);
  EXPECT_TRUE(partial->partial);
  EXPECT_EQ(partial->stop, SolveStop::kDeadline);
}

TEST_F(FaultInjectionTest, EvaluateFaultFailsCleanlyAndRecovers) {
  FaultInjector::Global().Arm(fault_sites::kEngineEvaluate, SyntheticOutage());
  Result<QueryOutcome> failed = engine_->Submit(MaryRequest());
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("synthetic outage"), std::string::npos);

  FaultInjector::Global().Disarm(fault_sites::kEngineEvaluate);
  EXPECT_TRUE(engine_->Submit(MaryRequest()).ok());
}

TEST_F(FaultInjectionTest, AcceptFaultLeavesConfidenceVersionUntouched) {
  Result<QueryOutcome> outcome = engine_->Submit(MaryRequest());
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->proposal.needed);

  uint64_t version = catalog_.confidence_version();
  FaultInjector::Global().Arm(fault_sites::kCatalogAccept, SyntheticOutage());
  EXPECT_EQ(engine_->AcceptProposal(outcome->proposal).code(),
            StatusCode::kInternal);
  EXPECT_EQ(catalog_.confidence_version(), version);

  FaultInjector::Global().Disarm(fault_sites::kCatalogAccept);
  ASSERT_TRUE(engine_->AcceptProposal(outcome->proposal).ok());
  EXPECT_GT(catalog_.confidence_version(), version);
}

TEST_F(FaultInjectionTest, CacheLookupFaultFailsRequestAndRecovers) {
  QueryService service(engine_.get(), {.num_workers = 0});
  SessionHandle mary = *service.OpenSession("mary", "investment");
  ServiceRequest request;
  request.sql = kCandidateQuery;
  request.required_fraction = 0.0;

  FaultInjector::SiteConfig config = SyntheticOutage();
  config.fire_count = 1;
  FaultInjector::Global().Arm(fault_sites::kCacheLookup, config);
  Result<QueryOutcome> failed = service.Submit(mary, request);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("synthetic outage"), std::string::npos);

  // fire_count exhausted: the very next request runs normally — the cache
  // mutex and the catalog lock were released on the error path.
  EXPECT_TRUE(service.Submit(mary, request).ok());
  service.Shutdown();
}

TEST_F(FaultInjectionTest, WorkerProcessFaultFailsPromiseNotThePool) {
  QueryService service(engine_.get(), {.num_workers = 1});
  SessionHandle mary = *service.OpenSession("mary", "investment");
  ServiceRequest request;
  request.sql = kCandidateQuery;
  request.required_fraction = 0.0;

  FaultInjector::SiteConfig config = SyntheticOutage();
  config.fire_count = 1;
  FaultInjector::Global().Arm(fault_sites::kWorkerProcess, config);
  Result<QueryOutcome> failed = service.Submit(mary, request);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("synthetic outage"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1u);

  // The worker survived the injected failure and serves the next request.
  EXPECT_TRUE(service.Submit(mary, request).ok());
  service.Shutdown();
}

TEST_F(FaultInjectionTest, AdmissionFaultIsRetriedToSuccess) {
  ServiceOptions options;
  options.num_workers = 1;
  options.admission_retries = 3;
  options.retry_backoff_ms = 1;
  QueryService service(engine_.get(), options);
  SessionHandle mary = *service.OpenSession("mary", "investment");

  FaultInjector::SiteConfig config;
  config.code = StatusCode::kResourceExhausted;
  config.fire_count = 2;  // first two admission attempts bounce
  FaultInjector::Global().Arm(fault_sites::kAdmission, config);

  ServiceRequest request;
  request.sql = kCandidateQuery;
  request.required_fraction = 0.0;
  Result<QueryOutcome> outcome = service.Submit(mary, request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(service.stats().retried, 2u);
  EXPECT_GE(FaultInjector::Global().hits(fault_sites::kAdmission), 3u);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, AdmissionFaultExhaustsBoundedRetries) {
  ServiceOptions options;
  options.num_workers = 1;
  options.admission_retries = 2;
  options.retry_backoff_ms = 1;
  QueryService service(engine_.get(), options);
  SessionHandle mary = *service.OpenSession("mary", "investment");

  FaultInjector::SiteConfig config;
  config.code = StatusCode::kResourceExhausted;  // fires until disarmed
  FaultInjector::Global().Arm(fault_sites::kAdmission, config);

  ServiceRequest request;
  request.sql = kCandidateQuery;
  request.required_fraction = 0.0;
  Result<QueryOutcome> outcome = service.Submit(mary, request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsResourceExhausted());
  EXPECT_EQ(service.stats().retried, 2u);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, PartialResultsNeverContainPolicyViolatingRows) {
  // An injected solver deadline must not loosen the β filter: released rows
  // all clear the threshold even when the proposal is partial.
  FaultInjector::Global().Arm(fault_sites::kHeuristicDeadline, {});
  QueryRequest request = MaryRequest();
  request.solver = SolverKind::kHeuristic;
  Result<QueryOutcome> outcome = engine_->Submit(request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->proposal.partial);
  for (size_t i : outcome->released) {
    EXPECT_TRUE(outcome->policy.Allows(outcome->intermediate.rows[i].confidence));
  }
}

}  // namespace
}  // namespace pcqe
