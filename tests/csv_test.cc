// Tests for CSV import/export.

#include "relational/csv.h"

#include <gtest/gtest.h>

namespace pcqe {
namespace {

TEST(ParseCsvTest, SimpleRows) {
  auto rows = *ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsvTest, QuotedFields) {
  auto rows = *ParseCsv("\"a,b\",\"line\nbreak\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "line\nbreak");
  EXPECT_EQ(rows[0][2], "say \"hi\"");
}

TEST(ParseCsvTest, CrlfAndMissingTrailingNewline) {
  auto rows = *ParseCsv("a,b\r\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(ParseCsvTest, EmptyFieldsPreserved) {
  auto rows = *ParseCsv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(ParseCsvTest, AlternateDelimiter) {
  auto rows = *ParseCsv("a;b\n1;2\n", ';');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
}

TEST(ParseCsvTest, UnterminatedQuoteIsError) {
  EXPECT_TRUE(ParseCsv("\"oops\n").status().IsParseError());
}

TEST(ImportCsvTest, InfersTypes) {
  Catalog catalog;
  Table* t = *ImportCsv(&catalog, "t",
                        "name,age,score,active\n"
                        "ann,30,1.5,true\n"
                        "bob,41,2.0,false\n");
  const Schema& s = t->schema();
  EXPECT_EQ(s.column(0).type, DataType::kString);
  EXPECT_EQ(s.column(1).type, DataType::kInt64);
  EXPECT_EQ(s.column(2).type, DataType::kDouble);
  EXPECT_EQ(s.column(3).type, DataType::kBool);
  ASSERT_EQ(t->num_tuples(), 2u);
  EXPECT_EQ(t->tuple(0).value(1), Value::Int(30));
  EXPECT_EQ(t->tuple(1).value(3), Value::Bool(false));
  // Default confidence 1.0 without a confidence column.
  EXPECT_DOUBLE_EQ(t->tuple(0).confidence(), 1.0);
}

TEST(ImportCsvTest, MixedNumbersWidenToDouble) {
  Catalog catalog;
  Table* t = *ImportCsv(&catalog, "t", "x\n1\n2.5\n");
  EXPECT_EQ(t->schema().column(0).type, DataType::kDouble);
  EXPECT_EQ(t->tuple(0).value(0), Value::Double(1.0));
}

TEST(ImportCsvTest, EmptyFieldsBecomeNull) {
  Catalog catalog;
  Table* t = *ImportCsv(&catalog, "t", "x,y\n1,\n,b\n");
  EXPECT_TRUE(t->tuple(0).value(1).is_null());
  EXPECT_TRUE(t->tuple(1).value(0).is_null());
  EXPECT_EQ(t->schema().column(0).type, DataType::kInt64);
}

TEST(ImportCsvTest, ConfidenceColumnConsumed) {
  Catalog catalog;
  CsvOptions options;
  options.confidence_column = "conf";
  Table* t = *ImportCsv(&catalog, "t", "name,conf\nann,0.3\nbob,0.8\n", options);
  EXPECT_EQ(t->schema().num_columns(), 1u);  // conf stripped from data
  EXPECT_DOUBLE_EQ(t->tuple(0).confidence(), 0.3);
  EXPECT_DOUBLE_EQ(t->tuple(1).confidence(), 0.8);
}

TEST(ImportCsvTest, MissingConfidenceColumnIsError) {
  Catalog catalog;
  CsvOptions options;
  options.confidence_column = "trust";
  EXPECT_TRUE(
      ImportCsv(&catalog, "t", "name\nann\n", options).status().IsInvalidArgument());
}

TEST(ImportCsvTest, BadConfidenceValueIsError) {
  Catalog catalog;
  CsvOptions options;
  options.confidence_column = "conf";
  EXPECT_TRUE(ImportCsv(&catalog, "t", "name,conf\nann,high\n", options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ImportCsvTest, RaggedRowsRejected) {
  Catalog catalog;
  EXPECT_TRUE(
      ImportCsv(&catalog, "t", "a,b\n1,2,3\n").status().IsInvalidArgument());
}

TEST(ImportCsvTest, HeaderlessInput) {
  Catalog catalog;
  CsvOptions options;
  options.has_header = false;
  Table* t = *ImportCsv(&catalog, "t", "1,x\n2,y\n", options);
  EXPECT_EQ(t->schema().column(0).name, "col0");
  EXPECT_EQ(t->num_tuples(), 2u);
}

TEST(ImportCsvTest, DefaultCostFunctionAttached) {
  Catalog catalog;
  CsvOptions options;
  options.default_cost = *MakeLinearCost(500.0);
  Table* t = *ImportCsv(&catalog, "t", "x\n1\n", options);
  EXPECT_NEAR(t->tuple(0).cost_function()->Increment(0.0, 0.1), 50.0, 1e-9);
}

TEST(ExportCsvTest, RoundTripsWithConfidence) {
  // Values containing quotes, delimiters and newlines survive a
  // export -> import cycle; confidences ride along in their own column.
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", Schema({{"name", DataType::kString, ""},
                                               {"score", DataType::kDouble, ""}}));
  ASSERT_TRUE(t->Insert({Value::String("ann"), Value::Double(1.5)}, 0.3).ok());
  ASSERT_TRUE(
      t->Insert({Value::String("has\"quote, comma\nand newline"), Value::Double(2.0)},
                0.9)
          .ok());

  CsvOptions options;
  options.confidence_column = "confidence";
  std::string exported = ExportCsv(*t, options);
  Catalog catalog2;
  Table* t2 = *ImportCsv(&catalog2, "t", exported, options);
  ASSERT_EQ(t2->num_tuples(), 2u);
  EXPECT_EQ(t2->tuple(1).value(0), Value::String("has\"quote, comma\nand newline"));
  EXPECT_DOUBLE_EQ(t2->tuple(0).confidence(), 0.3);
  EXPECT_DOUBLE_EQ(t2->tuple(1).confidence(), 0.9);
}

TEST(ImportCsvTest, BareQuoteMidFieldIsParseError) {
  Catalog catalog;
  EXPECT_TRUE(
      ImportCsv(&catalog, "t", "name\nhas\"quote\n").status().IsParseError());
}

TEST(ExportCsvTest, NullsExportEmpty) {
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", Schema({{"a", DataType::kInt64, ""},
                                               {"b", DataType::kString, ""}}));
  ASSERT_TRUE(t->Insert({Value::Null(), Value::String("x")}, 0.5).ok());
  EXPECT_EQ(ExportCsv(*t), "a,b\n,x\n");
}

TEST(CsvFileTest, FileRoundTrip) {
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", Schema({{"a", DataType::kInt64, ""}}));
  ASSERT_TRUE(t->Insert({Value::Int(7)}, 0.5).ok());
  std::string path = ::testing::TempDir() + "/pcqe_csv_test.csv";
  ASSERT_TRUE(ExportCsvFile(*t, path).ok());
  Catalog catalog2;
  Table* t2 = *ImportCsvFile(&catalog2, "t", path);
  ASSERT_EQ(t2->num_tuples(), 1u);
  EXPECT_EQ(t2->tuple(0).value(0), Value::Int(7));
  EXPECT_TRUE(ImportCsvFile(&catalog2, "u", "/nonexistent/file.csv").status().IsNotFound());
}

}  // namespace
}  // namespace pcqe
