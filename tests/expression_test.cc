// Unit tests for scalar expressions: binding, evaluation, 3VL, LIKE.

#include "query/expression.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace pcqe {
namespace {

Schema TestSchema() {
  return Schema({{"name", DataType::kString, "t"},
                 {"age", DataType::kInt64, "t"},
                 {"score", DataType::kDouble, "t"},
                 {"active", DataType::kBool, "t"}});
}

std::vector<Value> Row(const char* name, int64_t age, double score, bool active) {
  return {Value::String(name), Value::Int(age), Value::Double(score),
          Value::Bool(active)};
}

// Convenience: parse + bind + eval against one row.
Result<Value> Eval(const std::string& text, const std::vector<Value>& row) {
  auto parsed = ParseExpression(text);
  if (!parsed.ok()) return parsed.status();
  Status bound = (*parsed)->Bind(TestSchema());
  if (!bound.ok()) return bound;
  return (*parsed)->Eval(row);
}

TEST(ExpressionTest, LiteralsEvaluateToThemselves) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("42", row), Value::Int(42));
  EXPECT_EQ(*Eval("4.5", row), Value::Double(4.5));
  EXPECT_EQ(*Eval("'hi'", row), Value::String("hi"));
  EXPECT_EQ(*Eval("TRUE", row), Value::Bool(true));
  EXPECT_TRUE((*Eval("NULL", row)).is_null());
}

TEST(ExpressionTest, ColumnReferences) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("name", row), Value::String("ann"));
  EXPECT_EQ(*Eval("t.age", row), Value::Int(30));
  EXPECT_TRUE(Eval("ghost", row).status().IsBindError());
}

TEST(ExpressionTest, Comparisons) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("age = 30", row), Value::Bool(true));
  EXPECT_EQ(*Eval("age <> 30", row), Value::Bool(false));
  EXPECT_EQ(*Eval("age < 31", row), Value::Bool(true));
  EXPECT_EQ(*Eval("age <= 30", row), Value::Bool(true));
  EXPECT_EQ(*Eval("age > 30", row), Value::Bool(false));
  EXPECT_EQ(*Eval("age >= 31", row), Value::Bool(false));
  EXPECT_EQ(*Eval("name = 'ann'", row), Value::Bool(true));
  // != lexes as <>.
  EXPECT_EQ(*Eval("age != 29", row), Value::Bool(true));
  // Numeric cross-type comparison.
  EXPECT_EQ(*Eval("age = 30.0", row), Value::Bool(true));
  EXPECT_EQ(*Eval("score > 1", row), Value::Bool(true));
}

TEST(ExpressionTest, IncomparableTypesAreBindErrors) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_TRUE(Eval("age = 'x'", row).status().IsBindError());
  EXPECT_TRUE(Eval("active < 3", row).status().IsBindError());
}

TEST(ExpressionTest, Arithmetic) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("age + 5", row), Value::Int(35));
  EXPECT_EQ(*Eval("age - 40", row), Value::Int(-10));
  EXPECT_EQ(*Eval("age * 2", row), Value::Int(60));
  EXPECT_EQ(*Eval("age / 4", row), Value::Double(7.5));  // division is double
  EXPECT_EQ(*Eval("score * 2", row), Value::Double(3.0));
  EXPECT_EQ(*Eval("-age", row), Value::Int(-30));
  EXPECT_EQ(*Eval("2 + 3 * 4", row), Value::Int(14));     // precedence
  EXPECT_EQ(*Eval("(2 + 3) * 4", row), Value::Int(20));   // parens
  EXPECT_TRUE(Eval("age / 0", row).status().IsInvalidArgument());
  EXPECT_TRUE(Eval("name + 1", row).status().IsBindError());
}

TEST(ExpressionTest, KleeneLogic) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("TRUE AND FALSE", row), Value::Bool(false));
  EXPECT_EQ(*Eval("TRUE OR FALSE", row), Value::Bool(true));
  EXPECT_EQ(*Eval("NOT active", row), Value::Bool(false));
  // NULL propagation: unknown AND true = unknown; unknown AND false = false.
  EXPECT_TRUE((*Eval("NULL AND TRUE", row)).is_null());
  EXPECT_EQ(*Eval("NULL AND FALSE", row), Value::Bool(false));
  EXPECT_EQ(*Eval("NULL OR TRUE", row), Value::Bool(true));
  EXPECT_TRUE((*Eval("NULL OR FALSE", row)).is_null());
  EXPECT_TRUE((*Eval("NOT NULL", row)).is_null());
}

TEST(ExpressionTest, NullComparisonsAreNull) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_TRUE((*Eval("age = NULL", row)).is_null());
  EXPECT_TRUE((*Eval("NULL < 3", row)).is_null());
  EXPECT_TRUE((*Eval("age + NULL", row)).is_null());
}

TEST(ExpressionTest, IsNullPredicates) {
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*Eval("name IS NULL", row), Value::Bool(false));
  EXPECT_EQ(*Eval("name IS NOT NULL", row), Value::Bool(true));
  EXPECT_EQ(*Eval("NULL IS NULL", row), Value::Bool(true));
}

TEST(ExpressionTest, LikeOperator) {
  std::vector<Value> row = Row("annette", 30, 1.5, true);
  EXPECT_EQ(*Eval("name LIKE 'ann%'", row), Value::Bool(true));
  EXPECT_EQ(*Eval("name LIKE '%ette'", row), Value::Bool(true));
  EXPECT_EQ(*Eval("name LIKE 'a_nette'", row), Value::Bool(true));
  EXPECT_EQ(*Eval("name LIKE 'bob%'", row), Value::Bool(false));
  EXPECT_EQ(*Eval("name NOT LIKE 'bob%'", row), Value::Bool(true));
  EXPECT_TRUE(Eval("age LIKE 'x'", row).status().IsBindError());
}

TEST(LikeMatchTest, PatternEdgeCases) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%%"));
  EXPECT_TRUE(LikeMatch("abc", "a%c"));
  EXPECT_FALSE(LikeMatch("abc", "a%d"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%pp%"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_FALSE(LikeMatch("abcd", "abc"));
}

namespace like_reference {

// Straightforward exponential recursion: the correctness oracle for the
// iterative backtracking matcher.
bool Match(const char* text, const char* pattern) {  // NOLINT(misc-no-recursion)
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '%') {
    for (const char* t = text;; ++t) {
      if (Match(t, pattern + 1)) return true;
      if (*t == '\0') return false;
    }
  }
  if (*text == '\0') return false;
  if (*pattern == '_' || *pattern == *text) return Match(text + 1, pattern + 1);
  return false;
}

}  // namespace like_reference

class LikePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikePropertyTest, MatchesRecursiveReference) {
  Rng rng(GetParam());
  const char kTextAlphabet[] = {'a', 'b', 'c'};
  const char kPatternAlphabet[] = {'a', 'b', 'c', '%', '_'};
  for (int round = 0; round < 500; ++round) {
    std::string text, pattern;
    int text_len = static_cast<int>(rng.UniformInt(0, 8));
    int pattern_len = static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < text_len; ++i) {
      text += kTextAlphabet[rng.UniformInt(0, 2)];
    }
    for (int i = 0; i < pattern_len; ++i) {
      pattern += kPatternAlphabet[rng.UniformInt(0, 4)];
    }
    EXPECT_EQ(LikeMatch(text, pattern),
              like_reference::Match(text.c_str(), pattern.c_str()))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikePropertyTest, ::testing::Range<uint64_t>(1, 6));

TEST(ExpressionTest, EvalRequiresBinding) {
  auto e = Expr::ColumnRef("name");
  EXPECT_TRUE(e->Eval({Value::String("x")}).status().IsInternal());
}

TEST(ExpressionTest, CloneIsDeepAndPreservesBinding) {
  auto parsed = *ParseExpression("age + 1 > score");
  ASSERT_TRUE(parsed->Bind(TestSchema()).ok());
  auto clone = parsed->Clone();
  std::vector<Value> row = Row("ann", 30, 1.5, true);
  EXPECT_EQ(*clone->Eval(row), Value::Bool(true));
  EXPECT_EQ(clone->ToString(), parsed->ToString());
}

TEST(ExpressionTest, RebindAgainstDifferentSchema) {
  auto e = *ParseExpression("a > 1");
  Schema s1({{"a", DataType::kInt64, ""}});
  Schema s2({{"pad", DataType::kString, ""}, {"a", DataType::kInt64, ""}});
  ASSERT_TRUE(e->Bind(s1).ok());
  EXPECT_EQ(*e->Eval({Value::Int(5)}), Value::Bool(true));
  ASSERT_TRUE(e->Bind(s2).ok());
  EXPECT_EQ(*e->Eval({Value::String("x"), Value::Int(0)}), Value::Bool(false));
}

TEST(ExpressionTest, ToStringRoundTrips) {
  auto e = *ParseExpression("NOT (a = 1 AND b LIKE 'x%')");
  EXPECT_EQ(e->ToString(), "(NOT ((a = 1) AND (b LIKE 'x%')))");
}

TEST(ExpressionTest, BindErrorsForBadOperands) {
  Schema s = TestSchema();
  auto not_on_int = *ParseExpression("NOT age");
  EXPECT_TRUE(not_on_int->Bind(s).IsBindError());
  auto neg_on_string = *ParseExpression("-name");
  EXPECT_TRUE(neg_on_string->Bind(s).IsBindError());
  auto and_on_int = *ParseExpression("age AND active");
  EXPECT_TRUE(and_on_int->Bind(s).IsBindError());
}

}  // namespace
}  // namespace pcqe
