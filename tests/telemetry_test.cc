// Tests for the telemetry subsystem: instruments and registry identity,
// text/JSON exposition (including a small exposition-format parser), the
// trace builder/ring, and the pluggable log sink.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace pcqe {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(HistogramTest, BucketsObservations) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(1.0);  // inclusive upper bound
  h.Observe(50.0);
  h.Observe(1e9);  // +Inf bucket
  Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 50.0 + 1e9);
}

TEST(TelemetryRegistryTest, RegistrationIsIdempotentByName) {
  TelemetryRegistry registry;
  Counter* a = registry.GetCounter("pcqe_test_events_total", "help");
  Counter* b = registry.GetCounter("pcqe_test_events_total");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("pcqe_test_depth");
  Gauge* g2 = registry.GetGauge("pcqe_test_depth");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("pcqe_test_latency", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("pcqe_test_latency", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
}

TEST(TelemetryRegistryTest, PointersSurviveManyRegistrations) {
  TelemetryRegistry registry;
  Counter* first = registry.GetCounter("pcqe_test_c0_total");
  first->Increment();
  for (int i = 1; i < 200; ++i) {
    registry.GetCounter("pcqe_test_c" + std::to_string(i) + "_total")->Increment();
  }
  // Deque storage: the earliest pointer is still valid and holds its count.
  EXPECT_EQ(first->value(), 1u);
  EXPECT_EQ(registry.GetCounter("pcqe_test_c0_total"), first);
}

// EXPECT-and-bail for value-returning helpers (gtest's ASSERT_* only works
// in void functions).
#define ASSERT2_OR_RETURN(cond, ret) \
  do {                               \
    EXPECT_TRUE(cond);               \
    if (!(cond)) return ret;         \
  } while (0)

/// Minimal parser for the Prometheus text exposition subset RenderText
/// emits: `# HELP <name> <text>`, `# TYPE <name> <kind>`, and sample lines
/// `<name>[{le="<bound>"}] <number>`. Returns samples by full line key and
/// fails the test on any malformed line.
std::map<std::string, double> ParseExposition(const std::string& text) {
  std::map<std::string, double> samples;
  std::string type_for;  // name announced by the last # TYPE line
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT2_OR_RETURN(end != std::string::npos, samples);  // must end in \n
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      EXPECT_NE(sp, std::string::npos) << line;
      type_for = rest.substr(0, sp);
      std::string kind = rest.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    std::string key = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    char* parse_end = nullptr;
    double v = std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparseable value in: " << line;
    // Sample names must extend the instrument announced by # TYPE.
    EXPECT_EQ(key.rfind(type_for, 0), 0u) << "sample " << key
                                          << " outside # TYPE " << type_for;
    EXPECT_EQ(samples.count(key), 0u) << "duplicate sample " << key;
    samples[key] = v;
  }
  return samples;
}

TEST(TelemetryRegistryTest, RenderTextParses) {
  TelemetryRegistry registry;
  registry.GetCounter("pcqe_test_events_total", "events")->Increment(3);
  registry.GetGauge("pcqe_test_depth", "queue depth")->Set(-2);
  Histogram* h = registry.GetHistogram("pcqe_test_latency", {1.0, 10.0}, "lat");
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);

  std::map<std::string, double> samples = ParseExposition(registry.RenderText());
  EXPECT_EQ(samples.at("pcqe_test_events_total"), 3.0);
  EXPECT_EQ(samples.at("pcqe_test_depth"), -2.0);
  // Histogram buckets are cumulative, +Inf equals _count.
  EXPECT_EQ(samples.at("pcqe_test_latency_bucket{le=\"1\"}"), 1.0);
  EXPECT_EQ(samples.at("pcqe_test_latency_bucket{le=\"10\"}"), 2.0);
  EXPECT_EQ(samples.at("pcqe_test_latency_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_EQ(samples.at("pcqe_test_latency_count"), 3.0);
  EXPECT_EQ(samples.at("pcqe_test_latency_sum"), 55.5);
}

TEST(TelemetryRegistryTest, RenderJsonContainsInstruments) {
  TelemetryRegistry registry;
  registry.GetCounter("pcqe_test_events_total")->Increment(7);
  registry.GetGauge("pcqe_test_depth")->Set(4);
  registry.GetHistogram("pcqe_test_latency", {1.0})->Observe(0.5);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"pcqe_test_events_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pcqe_test_depth\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity; no string values
  // contain braces by construction).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceBuilderTest, NestsSpansWithParentLinks) {
  TraceBuilder builder("unit");
  size_t outer = builder.BeginSpan("outer");
  size_t inner = builder.BeginSpan("inner");
  builder.Annotate(inner, "k", "v");
  builder.EndSpan(inner);
  size_t sibling = builder.BeginSpan("sibling");
  builder.EndSpan(sibling);
  builder.EndSpan(outer);
  Trace trace = builder.Finish();

  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].name, "outer");
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].name, "inner");
  EXPECT_EQ(trace.spans[1].parent, static_cast<int32_t>(outer));
  EXPECT_EQ(trace.spans[2].name, "sibling");
  EXPECT_EQ(trace.spans[2].parent, static_cast<int32_t>(outer));
  ASSERT_EQ(trace.spans[1].annotations.size(), 1u);
  EXPECT_EQ(trace.spans[1].annotations[0].first, "k");
  EXPECT_EQ(trace.spans[1].annotations[0].second, "v");
  for (const Span& span : trace.spans) {
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
    EXPECT_LE(span.end_ns, trace.duration_ns) << span.name;
  }
}

TEST(TraceBuilderTest, FinishClosesOpenSpans) {
  TraceBuilder builder("unit");
  builder.BeginSpan("left-open");
  Trace trace = builder.Finish();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_GE(trace.spans[0].end_ns, trace.spans[0].start_ns);
}

TEST(ScopedSpanTest, ToleratesNullBuilder) {
  ScopedSpan span(nullptr, "nothing");
  span.Annotate("k", "v");  // must be a no-op, not a crash
}

TEST(ScopedSpanTest, ClosesOnScopeExit) {
  TraceBuilder builder("unit");
  {
    ScopedSpan span(&builder, "scoped");
    span.Annotate("key", "value");
  }
  Trace trace = builder.Finish();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].name, "scoped");
  EXPECT_GE(trace.spans[0].end_ns, trace.spans[0].start_ns);
}

TEST(TracerTest, RingEvictsOldestBeyondCapacity) {
  Tracer tracer(3);
  for (int i = 0; i < 5; ++i) {
    TraceBuilder builder("t" + std::to_string(i));
    uint64_t id = tracer.Record(builder.Finish());
    EXPECT_EQ(id, static_cast<uint64_t>(i + 1));  // ids are 1-based, stable
  }
  EXPECT_EQ(tracer.total_recorded(), 5u);
  std::vector<Trace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, 5u);  // newest first
  EXPECT_EQ(traces[2].id, 3u);
  EXPECT_FALSE(tracer.Get(1).has_value());  // evicted
  ASSERT_TRUE(tracer.Get(4).has_value());
  EXPECT_EQ(tracer.Get(4)->label, "t3");
}

TEST(CapturingLogSinkTest, CapturesAndRestores) {
  CapturingLogSink capture;
  LogSink* previous = LogConfig::set_sink(&capture);
  PCQE_LOG(Warning) << "telemetry test warning " << 42;
  LogConfig::set_sink(previous);
  PCQE_LOG(Warning) << "goes to the restored sink";

  std::vector<CapturingLogSink::Record> records = capture.records();
  ASSERT_EQ(records.size(), 1u);
  const CapturingLogSink::Record& record = records[0];
  EXPECT_EQ(record.level, LogLevel::kWarning);
  EXPECT_EQ(record.message, "telemetry test warning 42");
  EXPECT_TRUE(capture.Contains("test warning"));
  EXPECT_FALSE(capture.Contains("restored sink"));
}

TEST(CapturingLogSinkTest, ThresholdStillApplies) {
  CapturingLogSink capture;
  LogSink* previous = LogConfig::set_sink(&capture);
  PCQE_LOG(Debug) << "below the default threshold";
  LogConfig::set_sink(previous);
  EXPECT_TRUE(capture.records().empty());
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  // All four observations land in the single finite bucket (0, 10]; the
  // estimator interpolates linearly by rank: p50 at rank 2 of 4 sits at 5.
  Histogram h({10.0});
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.Observe(v);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), snap, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), snap, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), snap, 0.25), 2.5);
}

TEST(HistogramQuantileTest, ClampsInfBucketAndHandlesEmpty) {
  Histogram h({1.0, 10.0, 100.0});
  Histogram::Snapshot empty = h.snapshot();
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), empty, 0.5), 0.0);
  h.Observe(0.5);
  h.Observe(1.0);
  h.Observe(50.0);
  h.Observe(1e9);  // +Inf bucket
  Histogram::Snapshot snap = h.snapshot();
  // rank 2 of 4 closes the first bucket exactly: interpolate to its edge.
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), snap, 0.5), 1.0);
  // p95 lands in the +Inf bucket; no edge to interpolate toward, so the
  // estimate clamps to the highest finite bound.
  EXPECT_DOUBLE_EQ(Histogram::Quantile(h.bounds(), snap, 0.95), 100.0);
}

TEST(TelemetryRegistryTest, RenderTextEmitsParseableQuantiles) {
  TelemetryRegistry registry;
  Histogram* h = registry.GetHistogram("pcqe_test_latency", {10.0}, "lat");
  for (double v : {2.0, 4.0, 6.0, 8.0}) h->Observe(v);
  std::map<std::string, double> samples = ParseExposition(registry.RenderText());
  EXPECT_EQ(samples.at("pcqe_test_latency{quantile=\"0.5\"}"), 5.0);
  EXPECT_EQ(samples.at("pcqe_test_latency{quantile=\"0.95\"}"), 9.5);
  EXPECT_EQ(samples.at("pcqe_test_latency{quantile=\"0.99\"}"), 9.9);
  // An empty histogram renders no quantile lines (they would all be 0 and
  // read as real measurements).
  TelemetryRegistry empty_registry;
  empty_registry.GetHistogram("pcqe_test_idle", {10.0});
  std::string text = empty_registry.RenderText();
  EXPECT_EQ(text.find("quantile"), std::string::npos) << text;
}

TEST(TelemetryRegistryTest, RenderJsonBoundsRoundTrip) {
  // 0.1 and 3.0 are not exactly representable / print lossily at low
  // precision; the JSON export must carry enough digits that parsing the
  // rendered bound returns the bit-identical double.
  const std::vector<double> bounds = {0.1, 1.0, 3.0};
  TelemetryRegistry registry;
  Histogram* h = registry.GetHistogram("pcqe_test_rt", bounds);
  h->Observe(0.05);
  std::string json = registry.RenderJson();
  size_t start = json.find("\"pcqe_test_rt\":{\"bounds\":[");
  ASSERT_NE(start, std::string::npos) << json;
  start += std::string("\"pcqe_test_rt\":{\"bounds\":[").size();
  size_t end = json.find(']', start);
  ASSERT_NE(end, std::string::npos);
  std::string list = json.substr(start, end - start);
  std::vector<double> parsed;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* next = nullptr;
    parsed.push_back(std::strtod(p, &next));
    ASSERT_NE(p, next) << "unparseable bound in: " << list;
    p = *next == ',' ? next + 1 : next;
  }
  ASSERT_EQ(parsed.size(), bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(parsed[i], bounds[i]) << "bound " << i << " did not round-trip";
  }
}

TEST(TracerTest, EvictionCountsAndIdsStayMonotonic) {
  TelemetryRegistry registry;
  Tracer tracer(3);
  tracer.AttachTelemetry(&registry);
  Counter* evicted = registry.GetCounter("pcqe_traces_evicted_total");
  for (int i = 0; i < 5; ++i) {
    TraceBuilder builder("t" + std::to_string(i));
    (void)tracer.Record(builder.Finish());
  }
  EXPECT_EQ(evicted->value(), 2u);
  // Ids keep counting up after wraparound — eviction never recycles them.
  TraceBuilder builder("after-wrap");
  EXPECT_EQ(tracer.Record(builder.Finish()), 6u);
  EXPECT_EQ(evicted->value(), 3u);
  std::vector<Trace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces.front().id, 6u);
  EXPECT_EQ(traces.back().id, 4u);
}

TEST(TelemetryRegistryTest, ConcurrentRegistrationAndIncrement) {
  TelemetryRegistry registry;
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("pcqe_test_shared_total")->Increment();
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(registry.GetCounter("pcqe_test_shared_total")->value(), 4000u);
}

}  // namespace
}  // namespace pcqe
