// Unit tests for the cost-function family.

#include "cost/cost_function.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pcqe {
namespace {

TEST(CostTest, LinearLevels) {
  CostFunctionPtr c = *MakeLinearCost(1000.0);
  EXPECT_DOUBLE_EQ(c->Level(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c->Level(0.5), 500.0);
  // The running example: +0.1 on a tuple with a=1000 costs 100.
  EXPECT_NEAR(c->Increment(0.3, 0.4), 100.0, 1e-9);
  EXPECT_EQ(c->family(), CostFamily::kLinear);
}

TEST(CostTest, IncrementIsZeroForNonIncrease) {
  CostFunctionPtr c = *MakeLinearCost(10.0);
  EXPECT_DOUBLE_EQ(c->Increment(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(c->Increment(0.5, 0.3), 0.0);
}

TEST(CostTest, PolynomialLevels) {
  CostFunctionPtr c = *MakePolynomialCost(2.0, 2.0);
  EXPECT_DOUBLE_EQ(c->Level(0.5), 0.5);  // 2 * 0.25
  EXPECT_DOUBLE_EQ(c->Level(1.0), 2.0);
  EXPECT_EQ(c->family(), CostFamily::kPolynomial);
}

TEST(CostTest, ExponentialLevels) {
  CostFunctionPtr c = *MakeExponentialCost(1.0, 2.0);
  EXPECT_NEAR(c->Level(0.5), std::exp(1.0), 1e-12);
  EXPECT_EQ(c->family(), CostFamily::kExponential);
}

TEST(CostTest, LogarithmicLevels) {
  CostFunctionPtr c = *MakeLogarithmicCost(3.0, 10.0);
  EXPECT_NEAR(c->Level(0.2), 3.0 * std::log1p(2.0), 1e-12);
  EXPECT_EQ(c->family(), CostFamily::kLogarithmic);
}

TEST(CostTest, StepCountsActions) {
  CostFunctionPtr c = *MakeStepCost(5.0, 0.1);
  EXPECT_DOUBLE_EQ(c->Level(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c->Level(0.1), 5.0);
  EXPECT_DOUBLE_EQ(c->Level(0.15), 10.0);
  EXPECT_DOUBLE_EQ(c->Level(1.0), 50.0);
  EXPECT_EQ(c->family(), CostFamily::kStep);
}

TEST(CostTest, FactoriesValidateParameters) {
  EXPECT_TRUE(MakeLinearCost(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeLinearCost(-1.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakePolynomialCost(1.0, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(MakePolynomialCost(-1.0, 2.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeExponentialCost(1.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeLogarithmicCost(0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeStepCost(1.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeStepCost(1.0, 1.5).status().IsInvalidArgument());
}

TEST(CostTest, DefaultIsUnitLinear) {
  CostFunctionPtr c = DefaultCostFunction();
  EXPECT_NEAR(c->Increment(0.2, 0.7), 0.5, 1e-12);
  // Shared singleton.
  EXPECT_EQ(c.get(), DefaultCostFunction().get());
}

TEST(CostTest, FamilyNames) {
  EXPECT_EQ(CostFamilyToString(CostFamily::kLinear), "linear");
  EXPECT_EQ(CostFamilyToString(CostFamily::kPolynomial), "polynomial");
  EXPECT_EQ(CostFamilyToString(CostFamily::kExponential), "exponential");
  EXPECT_EQ(CostFamilyToString(CostFamily::kLogarithmic), "logarithmic");
  EXPECT_EQ(CostFamilyToString(CostFamily::kStep), "step");
}

TEST(CostTest, ToStringDescribesParameters) {
  EXPECT_EQ((*MakeLinearCost(2.0))->ToString(), "linear(a=2)");
  EXPECT_EQ((*MakeExponentialCost(2.0, 3.0))->ToString(), "exponential(a=2, b=3)");
}

// Property: every family is strictly increasing on [0, 1], so increments
// are positive for any from < to on a grid sweep.
class CostMonotoneTest : public ::testing::TestWithParam<CostFunctionPtr> {};

TEST_P(CostMonotoneTest, StrictlyIncreasingOnGrid) {
  const CostFunctionPtr& c = GetParam();
  double prev = c->Level(0.0);
  for (int i = 1; i <= 20; ++i) {
    double p = i / 20.0;
    double level = c->Level(p);
    EXPECT_GT(level, prev) << c->ToString() << " at p=" << p;
    prev = level;
  }
}

TEST_P(CostMonotoneTest, IncrementIsLevelDifference) {
  const CostFunctionPtr& c = GetParam();
  EXPECT_NEAR(c->Increment(0.2, 0.8), c->Level(0.8) - c->Level(0.2), 1e-9);
  EXPECT_NEAR(c->Increment(0.0, 1.0), c->Level(1.0) - c->Level(0.0), 1e-9);
}

TEST_P(CostMonotoneTest, IncrementsCompose) {
  const CostFunctionPtr& c = GetParam();
  double split = c->Increment(0.1, 0.4) + c->Increment(0.4, 0.9);
  EXPECT_NEAR(split, c->Increment(0.1, 0.9), 1e-9) << c->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CostMonotoneTest,
    ::testing::Values(*MakeLinearCost(3.0), *MakePolynomialCost(2.0, 2.0),
                      *MakePolynomialCost(1.5, 3.0), *MakeExponentialCost(1.0, 2.5),
                      *MakeLogarithmicCost(4.0, 12.0), *MakeStepCost(2.0, 0.05)),
    [](const ::testing::TestParamInfo<CostFunctionPtr>& param_info) {
      return CostFamilyToString(param_info.param->family()) +
             std::to_string(param_info.index);
    });

}  // namespace
}  // namespace pcqe
