// Tests for the result-graph partitioner (paper §4.3, Figures 8 and 9).

#include "strategy/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pcqe {
namespace {

/// Builds a problem whose results mention exactly the given base-tuple id
/// sets (as flat ANDs), with every base tuple at confidence 0.1.
IncrementProblem ProblemFromSets(const std::vector<std::vector<LineageVarId>>& sets,
                                 size_t required = 1) {
  auto arena = std::make_shared<LineageArena>();
  std::vector<LineageRef> results;
  std::vector<LineageVarId> all;
  for (const auto& set : sets) {
    std::vector<LineageRef> vars;
    for (LineageVarId id : set) {
      vars.push_back(arena->Var(id));
      all.push_back(id);
    }
    results.push_back(arena->And(vars));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  std::vector<BaseTupleSpec> specs;
  for (LineageVarId id : all) specs.push_back({id, 0.1, 1.0, nullptr});
  return *IncrementProblem::BuildSingle(arena, results, specs, required, {});
}

// Extracts groups as sorted result-index sets for comparison.
std::vector<std::vector<uint32_t>> GroupSets(const std::vector<PartitionGroup>& groups) {
  std::vector<std::vector<uint32_t>> out;
  for (const PartitionGroup& g : groups) out.push_back(g.results);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PartitionTest, DisjointResultsStaySingletons) {
  IncrementProblem p = ProblemFromSets({{1, 2}, {3, 4}, {5, 6}});
  std::vector<PartitionGroup> groups = PartitionResults(p);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(PartitionTest, SharedBasesMergeBelowGamma) {
  // Results 0 and 1 share two base tuples (weight 2 >= γ=2); result 2 is
  // attached by a single shared tuple (weight 1 < γ).
  IncrementProblem p = ProblemFromSets({{1, 2, 3}, {1, 2, 4}, {4, 5, 6}});
  PartitionOptions options;
  options.gamma = 2.0;
  std::vector<PartitionGroup> groups = PartitionResults(p, options);
  auto sets = GroupSets(groups);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{2}));
}

TEST(PartitionTest, GroupBaseTuplesAreTheUnion) {
  IncrementProblem p = ProblemFromSets({{1, 2, 3}, {1, 2, 4}});
  PartitionOptions options;
  options.gamma = 2.0;
  std::vector<PartitionGroup> groups = PartitionResults(p, options);
  ASSERT_EQ(groups.size(), 1u);
  // Local base indices 0..3 cover ids 1,2,3,4.
  EXPECT_EQ(groups[0].base_tuples.size(), 4u);
}

TEST(PartitionTest, PaperFigure8Example) {
  // Figure 8: seven result tuples with edge weights
  //   λ1-λ2:4(w/ λ5:3) ... encoded via shared base-tuple counts:
  //   w(1,2)=3? The paper's weights: λ1-λ2=4? We reproduce the *structure*:
  //   edges λ1-λ5=4, λ1-λ2=3, λ2-λ3=1, λ3-λ4=2, λ4-λ6=5, λ6-λ7=4, λ4-λ7=?,
  //   and γ=2 must yield {λ1,λ2,λ5} and {λ3,λ4,λ6,λ7} (Figure 9).
  // Base-tuple sets realizing those shared counts (ids are arbitrary):
  //   λ1∩λ5 = {10,11,12,13}   λ1∩λ2 = {20,21,22}
  //   λ2∩λ3 = {30}            λ3∩λ4 = {40,41}
  //   λ4∩λ6 = {50,51,52,53,54} λ6∩λ7 = {60,61,62,63}
  IncrementProblem p = ProblemFromSets({
      /*λ1*/ {10, 11, 12, 13, 20, 21, 22},
      /*λ2*/ {20, 21, 22, 30},
      /*λ3*/ {30, 40, 41},
      /*λ4*/ {40, 41, 50, 51, 52, 53, 54},
      /*λ5*/ {10, 11, 12, 13},
      /*λ6*/ {50, 51, 52, 53, 54, 60, 61, 62, 63},
      /*λ7*/ {60, 61, 62, 63},
  });
  PartitionOptions options;
  options.gamma = 2.0;
  auto sets = GroupSets(PartitionResults(p, options));
  ASSERT_EQ(sets.size(), 2u);
  // {λ1, λ2, λ5} = indices {0, 1, 4}; {λ3, λ4, λ6, λ7} = {2, 3, 5, 6}.
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 1, 4}));
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{2, 3, 5, 6}));
}

TEST(PartitionTest, HighGammaPreventsAllMerges) {
  IncrementProblem p = ProblemFromSets({{1, 2, 3}, {1, 2, 4}, {1, 2, 5}});
  PartitionOptions options;
  options.gamma = 100.0;
  EXPECT_EQ(PartitionResults(p, options).size(), 3u);
}

TEST(PartitionTest, GammaOnePullsChainsTogether) {
  IncrementProblem p = ProblemFromSets({{1, 2}, {2, 3}, {3, 4}});
  PartitionOptions options;
  options.gamma = 1.0;
  EXPECT_EQ(PartitionResults(p, options).size(), 1u);
}

TEST(PartitionTest, BaseTupleCapBlocksOversizedGroups) {
  // Merging all three would need 5 base tuples; cap at 4 stops the chain.
  IncrementProblem p = ProblemFromSets({{1, 2, 3}, {1, 2, 4}, {1, 2, 5}});
  PartitionOptions options;
  options.gamma = 1.0;
  options.max_group_base_tuples = 4;
  std::vector<PartitionGroup> groups = PartitionResults(p, options);
  EXPECT_EQ(groups.size(), 2u);
  for (const PartitionGroup& g : groups) {
    EXPECT_LE(g.base_tuples.size(), 4u);
  }
}

TEST(PartitionTest, EveryResultAppearsExactlyOnce) {
  IncrementProblem p = ProblemFromSets(
      {{1, 2}, {2, 3}, {4, 5}, {5, 6}, {7}, {1, 7}, {3, 4}});
  std::vector<PartitionGroup> groups = PartitionResults(p);
  std::vector<uint32_t> seen;
  for (const PartitionGroup& g : groups) {
    for (uint32_t r : g.results) seen.push_back(r);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(PartitionTest, EmptyProblemYieldsNoGroups) {
  auto arena = std::make_shared<LineageArena>();
  IncrementProblem p = *IncrementProblem::BuildSingle(
      arena, {}, {{1, 0.1, 1.0, nullptr}}, 0, {});
  EXPECT_TRUE(PartitionResults(p).empty());
}

}  // namespace
}  // namespace pcqe
