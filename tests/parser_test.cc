// Unit tests for the SQL lexer and parser.

#include "query/parser.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/lexer.h"

namespace pcqe {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = *Tokenize("SELECT a, 42 FROM t WHERE x <= 3.5");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, NumbersIntegerAndFloat) {
  auto tokens = *Tokenize("1 2.5 1e6 3.25e-2 7");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[4].type, TokenType::kInteger);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = *Tokenize("'it''s fine'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's fine");
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens = *Tokenize("a <> b -- trailing comment\n != <=");
  EXPECT_TRUE(tokens[1].IsOperator("<>"));
  EXPECT_TRUE(tokens[3].IsOperator("<>"));  // != normalizes to <>
  EXPECT_TRUE(tokens[4].IsOperator("<="));
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("select @x").status().IsParseError());
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = *Tokenize("select Select SELECT");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tokens[static_cast<size_t>(i)].IsKeyword("SELECT"));
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = *ParseSelect("SELECT * FROM t");
  EXPECT_EQ(stmt->select_list.size(), 1u);
  EXPECT_TRUE(stmt->select_list[0].is_star);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table_name, "t");
  EXPECT_FALSE(stmt->distinct);
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_EQ(stmt->limit, -1);
}

TEST(ParserTest, SelectListWithAliases) {
  auto stmt = *ParseSelect("SELECT a AS x, b y, c FROM t");
  ASSERT_EQ(stmt->select_list.size(), 3u);
  EXPECT_EQ(stmt->select_list[0].alias, "x");
  EXPECT_EQ(stmt->select_list[1].alias, "y");
  EXPECT_TRUE(stmt->select_list[2].alias.empty());
}

TEST(ParserTest, DistinctAndWhere) {
  auto stmt = *ParseSelect("SELECT DISTINCT company FROM proposal WHERE funding < 1000000");
  EXPECT_TRUE(stmt->distinct);
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->ToString(), "(funding < 1000000)");
}

TEST(ParserTest, JoinWithOn) {
  auto stmt = *ParseSelect(
      "SELECT * FROM a JOIN b ON a.id = b.id INNER JOIN c ON b.id = c.id");
  EXPECT_EQ(stmt->from.size(), 1u);
  ASSERT_EQ(stmt->joins.size(), 2u);
  EXPECT_EQ(stmt->joins[0].table.table_name, "b");
  EXPECT_EQ(stmt->joins[1].table.table_name, "c");
}

TEST(ParserTest, CommaJoinAndAliases) {
  auto stmt = *ParseSelect("SELECT * FROM a AS x, b y");
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].alias, "x");
  EXPECT_EQ(stmt->from[1].alias, "y");
  EXPECT_EQ(stmt->from[1].EffectiveName(), "y");
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_TRUE(ParseSelect("SELECT * FROM (SELECT * FROM t)").status().IsParseError());
  auto stmt = *ParseSelect("SELECT * FROM (SELECT * FROM t) AS sub");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_NE(stmt->from[0].subquery, nullptr);
  EXPECT_EQ(stmt->from[0].alias, "sub");
}

TEST(ParserTest, SetOperationsChain) {
  auto stmt = *ParseSelect("SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v");
  EXPECT_EQ(stmt->set_op, SetOpKind::kUnion);
  ASSERT_NE(stmt->set_rhs, nullptr);
  EXPECT_EQ(stmt->set_rhs->set_op, SetOpKind::kExcept);
  auto all = *ParseSelect("SELECT a FROM t UNION ALL SELECT a FROM u");
  EXPECT_EQ(all->set_op, SetOpKind::kUnionAll);
  auto inter = *ParseSelect("SELECT a FROM t INTERSECT SELECT a FROM u");
  EXPECT_EQ(inter->set_op, SetOpKind::kIntersect);
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = *ParseSelect("SELECT a FROM t ORDER BY a DESC, b LIMIT 10;");
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(ParseSelect("SELEC * FROM t").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT FROM t").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT * FROM").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT * FROM t WHERE").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT * FROM t LIMIT x").status().IsParseError());
  // "FROM t garbage" is a bare alias, so force trailing junk after WHERE.
  EXPECT_TRUE(ParseSelect("SELECT * FROM t WHERE x = 1 garbage").status().IsParseError());
  EXPECT_TRUE(ParseSelect("SELECT a b c FROM t").status().IsParseError());
  EXPECT_TRUE(ParseSelect("").status().IsParseError());
}

TEST(ParserTest, ErrorMentionsOffset) {
  Status s = ParseSelect("SELECT * FROM t WHERE +").status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = *ParseExpression("a OR b AND NOT c = 1");
  // OR(a, AND(b, NOT(c = 1)))
  EXPECT_EQ(e->ToString(), "(a OR (b AND (NOT (c = 1))))");
  auto arith = *ParseExpression("1 + 2 * 3 - 4 / 2");
  EXPECT_EQ(arith->ToString(), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(ParserTest, InDesugarsToDisjunction) {
  auto e = *ParseExpression("x IN (1, 2, 3)");
  EXPECT_EQ(e->ToString(), "(((x = 1) OR (x = 2)) OR (x = 3))");
  auto single = *ParseExpression("x IN (7)");
  EXPECT_EQ(single->ToString(), "(x = 7)");
  auto negated = *ParseExpression("x NOT IN (1, 2)");
  EXPECT_EQ(negated->ToString(), "(NOT ((x = 1) OR (x = 2)))");
  EXPECT_TRUE(ParseExpression("x IN ()").status().IsParseError());
  EXPECT_TRUE(ParseExpression("x IN 1, 2").status().IsParseError());
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto e = *ParseExpression("x BETWEEN 1 AND 10");
  EXPECT_EQ(e->ToString(), "((x >= 1) AND (x <= 10))");
  auto negated = *ParseExpression("x NOT BETWEEN 1 AND 10");
  EXPECT_EQ(negated->ToString(), "(NOT ((x >= 1) AND (x <= 10)))");
  // BETWEEN binds tighter than a following AND.
  auto chained = *ParseExpression("x BETWEEN 1 AND 10 AND y = 2");
  EXPECT_EQ(chained->ToString(), "(((x >= 1) AND (x <= 10)) AND (y = 2))");
  EXPECT_TRUE(ParseExpression("x BETWEEN 1").status().IsParseError());
  EXPECT_TRUE(ParseExpression("x NOT 5").status().IsParseError());
}

TEST(ParserTest, StandaloneExpressionRejectsTrailing) {
  EXPECT_TRUE(ParseExpression("a = 1 extra junk +").status().IsParseError());
}

TEST(ParserTest, QualifiedColumnNames) {
  auto e = *ParseExpression("t.col = u.col");
  EXPECT_EQ(e->left()->column_name(), "t.col");
  EXPECT_EQ(e->right()->column_name(), "u.col");
}

// Robustness: random token soup must produce a clean ParseError (or a valid
// statement), never a crash or hang. Seeds sweep a few hundred garbled
// inputs assembled from realistic SQL fragments.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "SELECT", "FROM",  "WHERE", "JOIN",   "ON",     "GROUP", "BY",     "HAVING",
      "ORDER",  "LIMIT", "UNION", "EXCEPT", "(",      ")",     ",",      "*",
      "=",      "<",     ">=",    "+",      "-",      "/",     "AND",    "OR",
      "NOT",    "LIKE",  "IS",    "NULL",   "'text'", "42",    "3.14",   "t",
      "a",      "b.c",   "AS",    "x",      "COUNT",  "SUM",   "DISTINCT", ";"};
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string sql;
    int len = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < len; ++i) {
      sql += kFragments[rng.UniformInt(0, std::size(kFragments) - 1)];
      sql += ' ';
    }
    auto result = ParseSelect(sql);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << sql << " -> "
                                                  << result.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range<uint64_t>(1, 6));

TEST(ParserTest, RunningExampleQueryParses) {
  // The paper's Candidate query as SQL.
  auto stmt = ParseSelect(
      "SELECT ci.company, ci.income "
      "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
      "JOIN companyinfo AS ci ON c.company = ci.company");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->select_list.size(), 2u);
  EXPECT_EQ((*stmt)->joins.size(), 1u);
}

}  // namespace
}  // namespace pcqe
