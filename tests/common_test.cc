// Unit tests for src/common: Status/Result, deadlines and cooperative
// cancellation, fault injection, string, math and random utils.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace pcqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::BindError("x").IsBindError());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  Status s = Status::NotFound("table 'foo' not found");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "table 'foo' not found");
  EXPECT_EQ(s.ToString(), "not_found: table 'foo' not found");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::InvalidArgument("bad delta").WithContext("building problem");
  EXPECT_EQ(s.message(), "building problem: bad delta");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, OkCodeIgnoresMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PCQE_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto succeeds = []() -> Status {
    PCQE_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusNormalizedToInternal) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PCQE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"a"}, ", "), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCaseAscii("Manager", "mANAGER"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("Manager", "Managers"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("abc", "abd"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimAscii("  x  "), "x");
  EXPECT_EQ(TrimAscii("x"), "x");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(0.058), "0.058");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.1), "0.1");
  EXPECT_EQ(FormatDouble(1234.5), "1234.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(MathUtilTest, ApproxComparisons) {
  EXPECT_TRUE(ApproxEqual(0.1 + 0.2, 0.3));
  EXPECT_FALSE(ApproxEqual(0.1, 0.2));
  EXPECT_TRUE(ApproxGreaterEqual(0.3, 0.3));
  EXPECT_TRUE(ApproxGreaterEqual(0.3 - 1e-12, 0.3));
  EXPECT_FALSE(ApproxGreaterEqual(0.29, 0.3));
}

TEST(MathUtilTest, ClampProbability) {
  EXPECT_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_EQ(ClampProbability(1.5), 1.0);
  EXPECT_EQ(ClampProbability(0.4), 0.4);
}

TEST(MathUtilTest, ProbCombinators) {
  EXPECT_DOUBLE_EQ(ProbAnd(0.3, 0.4), 0.12);
  EXPECT_NEAR(ProbOr(0.3, 0.4), 0.58, 1e-12);
  EXPECT_DOUBLE_EQ(ProbOr(1.0, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(ProbOr(0.0, 0.0), 0.0);
}

TEST(MathUtilTest, StepsBetween) {
  EXPECT_EQ(StepsBetween(0.3, 1.0, 0.1), 7u);
  EXPECT_EQ(StepsBetween(0.0, 1.0, 0.1), 10u);
  EXPECT_EQ(StepsBetween(0.5, 0.5, 0.1), 0u);
  EXPECT_EQ(StepsBetween(0.5, 0.4, 0.1), 0u);
  EXPECT_EQ(StepsBetween(0.0, 1.0, 0.0), 0u);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0.2, 0.4);
    EXPECT_GE(v, 0.2);
    EXPECT_LT(v, 0.4);
    int64_t n = rng.UniformInt(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(RngTest, ClampedGaussianStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.ClampedGaussian(0.1, 0.5, 0.0, 0.2);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.2);
  }
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(11);
  std::vector<size_t> s = rng.Sample(10, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (size_t x : s) EXPECT_LT(x, 10u);
  EXPECT_TRUE(rng.Sample(5, 0).empty());
  EXPECT_EQ(rng.Sample(5, 5).size(), 5u);
}

TEST(RngTest, SampleCoversAllElements) {
  // Over many draws of size 1 from 4 elements, every element must appear.
  Rng rng(13);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Sample(4, 1)[0]);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::multiset<int> ms(v.begin(), v.end());
  EXPECT_EQ(ms, (std::multiset<int>{1, 2, 3, 4, 5}));
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, ExpiryAndRemainingTrackTheClock) {
  Deadline past = Deadline::AfterMillis(-10);
  EXPECT_FALSE(past.infinite());
  EXPECT_TRUE(past.Expired());
  EXPECT_LT(past.RemainingSeconds(), 0.0);

  Deadline future = Deadline::AfterSeconds(60.0);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.RemainingSeconds(), 50.0);
  EXPECT_LE(future.RemainingSeconds(), 60.0);
}

TEST(DeadlineTest, SoonerPicksTheEarlierAndTreatsInfiniteAsLatest) {
  Deadline soon = Deadline::AfterMillis(10);
  Deadline late = Deadline::AfterSeconds(60.0);
  EXPECT_EQ(Deadline::Sooner(soon, late).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::Sooner(late, soon).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::Sooner(soon, Deadline::Infinite()).time_point(),
            soon.time_point());
  EXPECT_TRUE(
      Deadline::Sooner(Deadline::Infinite(), Deadline::Infinite()).infinite());
}

TEST(CancelTokenTest, RequestObserveReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(SolveControlTest, InertControlNeverStops) {
  SolveControl control;
  EXPECT_FALSE(control.active());
  EXPECT_FALSE(control.StopNow());
  EXPECT_FALSE(control.CheckEvery(1));
  EXPECT_EQ(control.cause(), StopCause::kNone);
}

TEST(SolveControlTest, LatchesFirstCauseAndStaysStopped) {
  CancelToken token;
  SolveControl control(Deadline::AfterMillis(-1), &token);
  ASSERT_TRUE(control.active());
  // Cancellation is checked before the (already expired) deadline.
  token.RequestCancel();
  EXPECT_TRUE(control.StopNow());
  EXPECT_EQ(control.cause(), StopCause::kCancelled);
  token.Reset();
  // The cause is latched: resetting the token does not un-stop the control.
  EXPECT_TRUE(control.StopNow());
  EXPECT_TRUE(control.stopped());
  EXPECT_EQ(control.cause(), StopCause::kCancelled);
}

TEST(SolveControlTest, ExpiredDeadlineStopsWithDeadlineCause) {
  SolveControl control(Deadline::AfterMillis(-1), nullptr);
  EXPECT_TRUE(control.StopNow());
  EXPECT_EQ(control.cause(), StopCause::kDeadline);
}

TEST(SolveControlTest, CheckEveryPollsCancelEveryCallAndClockOnStride) {
  CancelToken token;
  SolveControl control(Deadline::AfterSeconds(60.0), &token);
  // Far-future deadline: stride ticks alone never stop the control.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(control.CheckEvery(16));
  // The cancel flag is observed on the very next call, mid-stride.
  token.RequestCancel();
  EXPECT_TRUE(control.CheckEvery(16));
  EXPECT_EQ(control.cause(), StopCause::kCancelled);
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectorTest, DisarmedProbesAreFreeAndClean) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Probe(fault_sites::kEngineEvaluate).ok());
  EXPECT_FALSE(injector.DeadlineFires(fault_sites::kGreedyDeadline));
  EXPECT_EQ(injector.hits(fault_sites::kEngineEvaluate), 0u);
}

TEST_F(FaultInjectorTest, FireWindowIsDeterministic) {
  FaultInjector& injector = FaultInjector::Global();
  FaultInjector::SiteConfig config;
  config.fire_after = 2;
  config.fire_count = 2;
  config.message = "boom";
  injector.Arm(fault_sites::kEngineEvaluate, config);
  EXPECT_TRUE(injector.enabled());

  // Probes 0,1 pass; 2,3 fire; 4+ pass again — and the pattern replays
  // identically after re-arming (re-arming resets the probe counter).
  for (int round = 0; round < 2; ++round) {
    injector.Arm(fault_sites::kEngineEvaluate, config);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
      Status s = injector.Probe(fault_sites::kEngineEvaluate);
      fired.push_back(!s.ok());
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kInternal);
        EXPECT_NE(s.message().find("boom"), std::string::npos);
      }
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
    EXPECT_EQ(injector.hits(fault_sites::kEngineEvaluate), 6u);
  }
}

TEST_F(FaultInjectorTest, ProbabilityIsSeedDeterministic) {
  FaultInjector& injector = FaultInjector::Global();
  FaultInjector::SiteConfig config;
  config.probability = 0.5;
  config.seed = 42;
  auto run = [&] {
    injector.Arm(fault_sites::kCacheLookup, config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!injector.Probe(fault_sites::kCacheLookup).ok());
    }
    return fired;
  };
  std::vector<bool> first = run();
  EXPECT_EQ(first, run());  // same seed, same coin flips
  size_t fires = static_cast<size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultInjectorTest, DeadlineSitesAreStickyWithUnlimitedFireCount) {
  FaultInjector& injector = FaultInjector::Global();
  FaultInjector::SiteConfig config;  // fire_after = 0, unlimited
  injector.Arm(fault_sites::kGreedyDeadline, config);
  EXPECT_TRUE(injector.DeadlineFires(fault_sites::kGreedyDeadline));
  EXPECT_TRUE(injector.DeadlineFires(fault_sites::kGreedyDeadline));
  // Unarmed sites never fire even while another site is armed.
  EXPECT_FALSE(injector.DeadlineFires(fault_sites::kDncDeadline));
  injector.DisarmAll();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.DeadlineFires(fault_sites::kGreedyDeadline));
}

TEST_F(FaultInjectorTest, ArmedSiteActivatesSolveControl) {
  FaultInjector::SiteConfig config;
  config.fire_after = 1;  // first poll passes, second fires
  FaultInjector::Global().Arm(fault_sites::kDncDeadline, config);
  SolveControl control(Deadline::Infinite(), nullptr, fault_sites::kDncDeadline);
  ASSERT_TRUE(control.active());
  EXPECT_FALSE(control.StopNow());
  EXPECT_TRUE(control.StopNow());
  EXPECT_EQ(control.cause(), StopCause::kDeadline);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace pcqe
