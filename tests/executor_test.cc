// End-to-end query tests: planner + executor + lineage propagation.

#include <gtest/gtest.h>

#include "query/query_engine.h"
#include "relational/catalog.h"

namespace pcqe {
namespace {

/// Builds the paper's §3.1 venture-capital database (Tables 1 and 2).
/// Proposal tuples 02/03 are BlueSky proposals under one million dollars
/// with confidences 0.3 / 0.4; CompanyInfo tuple 13 is BlueSky's income
/// with confidence 0.1.
class VentureCapitalDb : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* proposal = *catalog_.CreateTable(
        "Proposal", Schema({{"company", DataType::kString, ""},
                            {"proposal", DataType::kString, ""},
                            {"funding", DataType::kDouble, ""}}));
    id01_ = *proposal->Insert(
        {Value::String("AlphaTech"), Value::String("expansion"), Value::Double(2e6)},
        0.5);
    id02_ = *proposal->Insert(
        {Value::String("BlueSky"), Value::String("marketing"), Value::Double(8e5)}, 0.3);
    id03_ = *proposal->Insert(
        {Value::String("BlueSky"), Value::String("research"), Value::Double(5e5)}, 0.4);
    id04_ = *proposal->Insert(
        {Value::String("Cyclone"), Value::String("tooling"), Value::Double(1.5e6)}, 0.7);

    Table* info = *catalog_.CreateTable(
        "CompanyInfo",
        Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
    id11_ = *info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8);
    id12_ = *info->Insert({Value::String("Cyclone"), Value::Double(1.5e5)}, 0.9);
    id13_ = *info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1);
  }

  Catalog catalog_;
  BaseTupleId id01_, id02_, id03_, id04_, id11_, id12_, id13_;
};

TEST_F(VentureCapitalDb, ScanComputesPerTupleConfidence) {
  QueryResult r = *RunQuery(catalog_, "SELECT * FROM proposal");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_NEAR(r.rows[0].confidence, 0.5, 1e-12);
  EXPECT_NEAR(r.rows[1].confidence, 0.3, 1e-12);
  EXPECT_EQ(r.schema.num_columns(), 3u);
}

TEST_F(VentureCapitalDb, FilterKeepsMatchingRowsOnly) {
  QueryResult r =
      *RunQuery(catalog_, "SELECT company FROM proposal WHERE funding < 1000000");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("BlueSky"));
  EXPECT_EQ(r.rows[1].values[0], Value::String("BlueSky"));
}

TEST_F(VentureCapitalDb, DistinctMergesLineageWithOr) {
  // Π_company σ_{funding<1M}(Proposal): the two BlueSky derivations merge,
  // p25 = 0.3 + 0.4 - 0.3·0.4 = 0.58 (paper's tuple 25).
  QueryResult r = *RunQuery(
      catalog_, "SELECT DISTINCT company FROM proposal WHERE funding < 1000000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("BlueSky"));
  EXPECT_NEAR(r.rows[0].confidence, 0.58, 1e-12);
}

TEST_F(VentureCapitalDb, RunningExampleJoinConfidence) {
  // Candidate = (Π_company σ(Proposal)) ⋈ CompanyInfo: p38 = 0.58 · 0.1.
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT ci.company, ci.income "
      "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
      "JOIN companyinfo AS ci ON c.company = ci.company");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("BlueSky"));
  EXPECT_EQ(r.rows[0].values[1], Value::Double(1.2e5));
  EXPECT_NEAR(r.rows[0].confidence, 0.058, 1e-12);
  // Lineage is exactly (t02 | t03) & t13.
  std::vector<LineageVarId> vars = r.arena->Variables(r.rows[0].lineage);
  EXPECT_EQ(vars.size(), 3u);
}

TEST_F(VentureCapitalDb, RecomputeAfterImprovement) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT ci.company FROM (SELECT DISTINCT company FROM proposal WHERE funding < "
      "1000000) AS c JOIN companyinfo AS ci ON c.company = ci.company");
  ASSERT_EQ(r.rows.size(), 1u);
  // Raise tuple 03 from 0.4 to 0.5 (the paper's cheap alternative).
  ASSERT_TRUE(catalog_.SetConfidence(id03_, 0.5).ok());
  ConfidenceMap fresh = *SnapshotConfidences(catalog_, r);
  r.RecomputeConfidences(fresh);
  EXPECT_NEAR(r.rows[0].confidence, 0.065, 1e-12);
}

TEST_F(VentureCapitalDb, ProjectionExpressions) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT company, funding / 1000000 AS millions FROM proposal "
                "WHERE company = 'AlphaTech'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.schema.column(1).name, "millions");
  EXPECT_EQ(r.rows[0].values[1], Value::Double(2.0));
}

TEST_F(VentureCapitalDb, CrossJoinProducesProductWithAndLineage) {
  QueryResult r = *RunQuery(catalog_, "SELECT * FROM proposal, companyinfo");
  EXPECT_EQ(r.rows.size(), 12u);
  // Every row's confidence is the product of its two base confidences.
  for (const auto& row : r.rows) {
    EXPECT_EQ(r.arena->Variables(row.lineage).size(), 2u);
  }
}

TEST_F(VentureCapitalDb, ThetaJoinFallsBackToNestedLoop) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT p.company FROM proposal AS p JOIN companyinfo AS ci "
      "ON p.funding > ci.income AND p.company = ci.company");
  // AlphaTech: 2e6 > 3e5 yes; BlueSky 8e5/5e5 > 1.2e5 yes (x2); Cyclone yes.
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(VentureCapitalDb, OrderByAndLimit) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT company, funding FROM proposal ORDER BY funding DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("AlphaTech"));
  EXPECT_EQ(r.rows[1].values[0], Value::String("Cyclone"));
}

TEST_F(VentureCapitalDb, OrderByAscendingIsDefault) {
  QueryResult r =
      *RunQuery(catalog_, "SELECT funding FROM proposal ORDER BY funding");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].values[0], Value::Double(5e5));
  EXPECT_EQ(r.rows[3].values[0], Value::Double(2e6));
}

TEST_F(VentureCapitalDb, UnionMergesDuplicatesAcrossInputs) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT company FROM proposal WHERE funding < 600000 "
      "UNION SELECT company FROM companyinfo WHERE company = 'BlueSky'");
  ASSERT_EQ(r.rows.size(), 1u);
  // OR(t03, t13) = 0.4 + 0.1 - 0.04 = 0.46.
  EXPECT_NEAR(r.rows[0].confidence, 0.46, 1e-12);
}

TEST_F(VentureCapitalDb, UnionAllKeepsDuplicates) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT company FROM proposal WHERE funding < 600000 "
      "UNION ALL SELECT company FROM companyinfo WHERE company = 'BlueSky'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(VentureCapitalDb, ExceptNegatesSubtrahendLineage) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT company FROM proposal EXCEPT SELECT company FROM companyinfo "
      "WHERE income > 200000");
  // Left distinct: AlphaTech(0.5), BlueSky(0.58), Cyclone(0.7).
  // Right: AlphaTech (0.8). AlphaTech survives with p = 0.5 * (1-0.8) = 0.1.
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    if (row.values[0] == Value::String("AlphaTech")) {
      EXPECT_NEAR(row.confidence, 0.1, 1e-12);
    }
    if (row.values[0] == Value::String("Cyclone")) {
      EXPECT_NEAR(row.confidence, 0.7, 1e-12);
    }
  }
}

TEST_F(VentureCapitalDb, IntersectConjoinsLineage) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT company FROM proposal INTERSECT SELECT company FROM companyinfo");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    if (row.values[0] == Value::String("BlueSky")) {
      EXPECT_NEAR(row.confidence, 0.58 * 0.1, 1e-12);
    }
  }
}

TEST_F(VentureCapitalDb, SetOpArityMismatchIsBindError) {
  EXPECT_TRUE(RunQuery(catalog_,
                       "SELECT company FROM proposal UNION SELECT company, income "
                       "FROM companyinfo")
                  .status()
                  .IsBindError());
}

TEST_F(VentureCapitalDb, UnknownTableAndColumnAreBindErrors) {
  EXPECT_TRUE(RunQuery(catalog_, "SELECT * FROM ghost").status().IsBindError());
  EXPECT_TRUE(RunQuery(catalog_, "SELECT ghost FROM proposal").status().IsBindError());
  EXPECT_TRUE(RunQuery(catalog_, "SELECT funding FROM proposal WHERE company")
                  .status()
                  .IsBindError());
}

TEST_F(VentureCapitalDb, AmbiguousColumnIsBindError) {
  EXPECT_TRUE(RunQuery(catalog_,
                       "SELECT company FROM proposal, companyinfo")
                  .status()
                  .IsBindError());
}

TEST_F(VentureCapitalDb, NullJoinKeysNeverMatch) {
  Table* t = *catalog_.CreateTable(
      "WithNull",
      Schema({{"company", DataType::kString, ""}, {"x", DataType::kInt64, ""}}));
  ASSERT_TRUE(t->Insert({Value::Null(), Value::Int(1)}, 0.5).ok());
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT * FROM withnull AS w JOIN withnull AS v ON w.company = v.company");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(VentureCapitalDb, LimitZeroAndOversized) {
  EXPECT_EQ((*RunQuery(catalog_, "SELECT * FROM proposal LIMIT 0")).rows.size(), 0u);
  EXPECT_EQ((*RunQuery(catalog_, "SELECT * FROM proposal LIMIT 100")).rows.size(), 4u);
}

TEST_F(VentureCapitalDb, PredicatePushdownPlacesFiltersBelowJoins) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT p.company FROM proposal AS p JOIN companyinfo AS ci "
      "ON p.company = ci.company WHERE p.funding < 1000000 AND ci.income > 100000");
  // Both single-table conjuncts sit below the join; the equi conjunct stays
  // as the join predicate.
  size_t join_pos = r.plan_text.find("Join");
  ASSERT_NE(join_pos, std::string::npos);
  size_t funding_filter = r.plan_text.find("funding < 1000000");
  size_t income_filter = r.plan_text.find("income > 100000");
  ASSERT_NE(funding_filter, std::string::npos);
  ASSERT_NE(income_filter, std::string::npos);
  EXPECT_GT(funding_filter, join_pos);  // rendered under (after) the join line
  EXPECT_GT(income_filter, join_pos);
  EXPECT_NE(r.plan_text.find("Join (p.company = ci.company)"), std::string::npos);
  // Semantics unchanged: both BlueSky proposals join the BlueSky info row.
  ASSERT_EQ(r.rows.size(), 2u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row.values[0], Value::String("BlueSky"));
  }
  EXPECT_NEAR(r.rows[0].confidence, 0.3 * 0.1, 1e-12);
  EXPECT_NEAR(r.rows[1].confidence, 0.4 * 0.1, 1e-12);
}

TEST_F(VentureCapitalDb, CrossTableOrPredicateStaysAtJoinLevel) {
  // An OR spanning both tables cannot be pushed below the join.
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT p.company FROM proposal AS p, companyinfo AS ci "
      "WHERE p.funding < 600000 OR ci.income > 250000");
  // Plan: the disjunction is the join predicate (first bindable level).
  EXPECT_NE(r.plan_text.find("OR"), std::string::npos);
  // Semantics: 4 proposals x 3 infos = 12 pairs; funding<6e5 matches 1
  // proposal (x3 infos), income>2.5e5 matches 1 info (x4 proposals),
  // minus the 1 overlap = 3 + 4 - 1 = 6.
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(VentureCapitalDb, PushdownPreservesAmbiguityErrors) {
  // "company" exists in both tables: must stay a bind error even though it
  // would bind cleanly against either source alone.
  EXPECT_TRUE(RunQuery(catalog_,
                       "SELECT p.company FROM proposal AS p, companyinfo AS ci "
                       "WHERE company = 'BlueSky'")
                  .status()
                  .IsBindError());
}

TEST_F(VentureCapitalDb, InAndBetweenEvaluate) {
  QueryResult in_query = *RunQuery(
      catalog_, "SELECT company FROM proposal WHERE company IN ('BlueSky', 'Cyclone')");
  EXPECT_EQ(in_query.rows.size(), 3u);
  QueryResult between = *RunQuery(
      catalog_,
      "SELECT company FROM proposal WHERE funding BETWEEN 500000 AND 1500000");
  EXPECT_EQ(between.rows.size(), 3u);  // 8e5, 5e5, 1.5e6
  QueryResult not_in = *RunQuery(
      catalog_, "SELECT company FROM proposal WHERE company NOT IN ('BlueSky')");
  EXPECT_EQ(not_in.rows.size(), 2u);
}

TEST_F(VentureCapitalDb, PlanTextRendersTree) {
  QueryResult r =
      *RunQuery(catalog_, "SELECT company FROM proposal WHERE funding < 1000000");
  EXPECT_NE(r.plan_text.find("Scan Proposal"), std::string::npos);
  EXPECT_NE(r.plan_text.find("Filter"), std::string::npos);
  EXPECT_NE(r.plan_text.find("Project"), std::string::npos);
}

TEST_F(VentureCapitalDb, ToTableRendersHeaderAndRows) {
  QueryResult r = *RunQuery(catalog_, "SELECT company FROM proposal LIMIT 1");
  std::string table = r.ToTable();
  EXPECT_NE(table.find("company"), std::string::npos);
  EXPECT_NE(table.find("confidence"), std::string::npos);
  EXPECT_NE(table.find("AlphaTech"), std::string::npos);
}

TEST_F(VentureCapitalDb, SelfJoinDuplicatesLineageVariableOnce) {
  // Self-join of the same tuple: lineage t AND t simplifies to t, so the
  // confidence is p, not p².
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT p.company FROM proposal AS p JOIN proposal AS q "
      "ON p.company = q.company AND p.proposal = q.proposal "
      "WHERE p.company = 'AlphaTech'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NEAR(r.rows[0].confidence, 0.5, 1e-12);
}

}  // namespace
}  // namespace pcqe
