// Unit tests for IncrementProblem and ConfidenceState.

#include "strategy/problem.h"

#include <gtest/gtest.h>

namespace pcqe {
namespace {

// The paper's running instance: one result (t2 | t3) & t13, β = 0.06.
struct RunningExample {
  std::shared_ptr<LineageArena> arena = std::make_shared<LineageArena>();
  LineageRef result;
  std::vector<BaseTupleSpec> specs;

  RunningExample() {
    result = arena->And(arena->Or(arena->Var(2), arena->Var(3)), arena->Var(13));
    specs = {
        {2, 0.3, 1.0, *MakeLinearCost(1000.0)},   // +0.1 costs 100
        {3, 0.4, 1.0, *MakeLinearCost(100.0)},    // +0.1 costs 10
        {13, 0.1, 1.0, *MakeLinearCost(10000.0)}, // +0.1 costs 1000
    };
  }

  IncrementProblem Problem(double beta = 0.06, double delta = 0.1) const {
    ProblemOptions options;
    options.beta = beta;
    options.delta = delta;
    return *IncrementProblem::BuildSingle(arena, {result}, specs, 1, options);
  }
};

TEST(ProblemBuildTest, ValidatesOptions) {
  RunningExample ex;
  ProblemOptions bad;
  bad.delta = 0.0;
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, ex.specs, 1, bad)
                  .status()
                  .IsInvalidArgument());
  bad.delta = 0.1;
  bad.beta = 1.5;
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, ex.specs, 1, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsNullArena) {
  RunningExample ex;
  EXPECT_TRUE(IncrementProblem::BuildSingle(nullptr, {ex.result}, ex.specs, 1, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsMissingBaseTuple) {
  RunningExample ex;
  std::vector<BaseTupleSpec> incomplete = {ex.specs[0], ex.specs[1]};  // no t13
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, incomplete, 1, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsDuplicateBaseIds) {
  RunningExample ex;
  std::vector<BaseTupleSpec> dup = ex.specs;
  dup.push_back(ex.specs[0]);
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, dup, 1, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsOverRequirement) {
  RunningExample ex;
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, ex.specs, 2, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsBadQueryAssignment) {
  RunningExample ex;
  auto r = IncrementProblem::Build(ex.arena, {ex.result}, {5}, {1}, ex.specs, {});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ProblemBuildTest, RejectsCeilingBelowConfidence) {
  RunningExample ex;
  std::vector<BaseTupleSpec> bad = ex.specs;
  bad[0].max_confidence = 0.2;  // below initial 0.3
  EXPECT_TRUE(IncrementProblem::BuildSingle(ex.arena, {ex.result}, bad, 1, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ProblemTest, DimensionsAndIndices) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  EXPECT_EQ(p.num_results(), 1u);
  EXPECT_EQ(p.num_base_tuples(), 3u);
  EXPECT_EQ(p.num_queries(), 1u);
  EXPECT_EQ(p.required(0), 1u);
  EXPECT_TRUE(p.is_monotone());
  EXPECT_EQ(p.bases_of_result(0).size(), 3u);
  EXPECT_EQ(p.results_of_base(0).size(), 1u);
  EXPECT_EQ(*p.BaseIndexOf(13), 2u);
  EXPECT_TRUE(p.BaseIndexOf(999).status().IsNotFound());
}

TEST(ProblemTest, EvalResultMatchesPaper) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  EXPECT_NEAR(p.EvalResult(0, p.InitialProbs()), 0.058, 1e-12);
  std::vector<double> raised = p.InitialProbs();
  raised[*p.BaseIndexOf(3)] = 0.5;
  EXPECT_NEAR(p.EvalResult(0, raised), 0.065, 1e-12);
}

TEST(ProblemTest, GridSteps) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  size_t i2 = *p.BaseIndexOf(2);  // 0.3 -> 1.0 in 0.1 steps
  EXPECT_EQ(p.NumSteps(i2), 7u);
  EXPECT_NEAR(p.ValueAtStep(i2, 0), 0.3, 1e-12);
  EXPECT_NEAR(p.ValueAtStep(i2, 7), 1.0, 1e-12);
  EXPECT_NEAR(p.ValueAtStep(i2, 99), 1.0, 1e-12);  // clamped
}

TEST(ProblemTest, FractionalFinalStepLandsOnCeiling) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->Var(1);
  std::vector<BaseTupleSpec> specs = {{1, 0.3, 0.55, nullptr}};
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, {});
  // 0.3 -> 0.55 at δ=0.1: steps 0.4, 0.5, then fractional to 0.55.
  EXPECT_EQ(p.NumSteps(0), 3u);
  EXPECT_NEAR(p.ValueAtStep(0, 2), 0.5, 1e-12);
  EXPECT_NEAR(p.ValueAtStep(0, 3), 0.55, 1e-12);
}

TEST(ProblemTest, MonotoneFlagDetectsNegation) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->And(arena->Var(1), arena->Not(arena->Var(2)));
  std::vector<BaseTupleSpec> specs = {{1, 0.5, 1.0, nullptr}, {2, 0.5, 1.0, nullptr}};
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, {});
  EXPECT_FALSE(p.is_monotone());
}

TEST(ProblemTest, ExtraBaseTuplesAreAllowed) {
  RunningExample ex;
  std::vector<BaseTupleSpec> extra = ex.specs;
  extra.push_back({99, 0.5, 1.0, nullptr});
  IncrementProblem p =
      *IncrementProblem::BuildSingle(ex.arena, {ex.result}, extra, 1, {});
  EXPECT_EQ(p.num_base_tuples(), 4u);
  EXPECT_TRUE(p.results_of_base(*p.BaseIndexOf(99)).empty());
}

TEST(ConfidenceStateTest, InitialState) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  ConfidenceState s(p);
  EXPECT_NEAR(s.result_confidence(0), 0.058, 1e-12);
  EXPECT_EQ(s.satisfied(0), 0u);
  EXPECT_EQ(s.total_satisfied(), 0u);
  EXPECT_FALSE(s.Feasible());
  EXPECT_EQ(s.Deficit(0), 1u);
  EXPECT_EQ(s.TotalDeficit(), 1u);
  EXPECT_DOUBLE_EQ(s.total_cost(), 0.0);
}

TEST(ConfidenceStateTest, SetProbUpdatesEverything) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  ConfidenceState s(p);
  size_t i3 = *p.BaseIndexOf(3);
  s.SetProb(i3, 0.5);
  EXPECT_NEAR(s.result_confidence(0), 0.065, 1e-12);
  EXPECT_TRUE(s.Feasible());
  EXPECT_EQ(s.satisfied(0), 1u);
  EXPECT_NEAR(s.total_cost(), 10.0, 1e-9);  // linear a=100, Δp=0.1
  // Reverting restores cost and satisfaction.
  s.SetProb(i3, 0.4);
  EXPECT_FALSE(s.Feasible());
  EXPECT_NEAR(s.total_cost(), 0.0, 1e-9);
}

TEST(ConfidenceStateTest, ProbeDoesNotCommit) {
  RunningExample ex;
  IncrementProblem p = ex.Problem();
  ConfidenceState s(p);
  size_t i3 = *p.BaseIndexOf(3);
  double probed = s.ProbeResult(0, i3, 0.5);
  EXPECT_NEAR(probed, 0.065, 1e-12);
  EXPECT_NEAR(s.result_confidence(0), 0.058, 1e-12);
  EXPECT_NEAR(s.prob(i3), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.total_cost(), 0.0);
}

TEST(ConfidenceStateTest, MultiQuerySatisfactionTracking) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef r0 = arena->Var(1);
  LineageRef r1 = arena->Var(2);
  std::vector<BaseTupleSpec> specs = {{1, 0.2, 1.0, nullptr}, {2, 0.2, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.5;
  IncrementProblem p =
      *IncrementProblem::Build(arena, {r0, r1}, {0, 1}, {1, 1}, specs, options);
  ConfidenceState s(p);
  EXPECT_EQ(s.TotalDeficit(), 2u);
  s.SetProb(0, 0.6);
  EXPECT_EQ(s.satisfied(0), 1u);
  EXPECT_EQ(s.satisfied(1), 0u);
  EXPECT_FALSE(s.Feasible());  // query 1 still short
  s.SetProb(1, 0.6);
  EXPECT_TRUE(s.Feasible());
}

}  // namespace
}  // namespace pcqe
