// Tests for GROUP BY / HAVING / aggregate functions with lineage.

#include <gtest/gtest.h>

#include "query/query_engine.h"
#include "relational/catalog.h"

namespace pcqe {
namespace {

class AggregateDb : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* orders = *catalog_.CreateTable(
        "orders", Schema({{"customer", DataType::kString, ""},
                          {"item", DataType::kString, ""},
                          {"qty", DataType::kInt64, ""},
                          {"price", DataType::kDouble, ""}}));
    auto add = [&](const char* cust, const char* item, int64_t qty, double price,
                   double conf) {
      ASSERT_TRUE(orders
                      ->Insert({Value::String(cust), Value::String(item),
                                Value::Int(qty), Value::Double(price)},
                               conf)
                      .ok());
    };
    add("ann", "bolt", 4, 2.5, 0.9);
    add("ann", "gear", 1, 10.0, 0.8);
    add("bob", "bolt", 2, 2.5, 0.7);
    add("bob", "gear", 3, 10.0, 0.6);
    add("bob", "belt", 5, 4.0, 0.5);

    Table* with_nulls = *catalog_.CreateTable(
        "readings", Schema({{"site", DataType::kString, ""},
                            {"value", DataType::kDouble, ""}}));
    ASSERT_TRUE(
        with_nulls->Insert({Value::String("a"), Value::Double(1.0)}, 0.9).ok());
    ASSERT_TRUE(with_nulls->Insert({Value::String("a"), Value::Null()}, 0.9).ok());
    ASSERT_TRUE(
        with_nulls->Insert({Value::String("b"), Value::Null()}, 0.9).ok());
  }

  Catalog catalog_;
};

TEST_F(AggregateDb, GlobalCountStar) {
  QueryResult r = *RunQuery(catalog_, "SELECT COUNT(*) FROM orders");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[0], Value::Int(5));
  EXPECT_EQ(r.schema.column(0).name, "COUNT(*)");
}

TEST_F(AggregateDb, GroupByWithCountAndSum) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT customer, COUNT(*) AS n, SUM(qty) AS total FROM orders "
      "GROUP BY customer ORDER BY customer");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("ann"));
  EXPECT_EQ(r.rows[0].values[1], Value::Int(2));
  EXPECT_EQ(r.rows[0].values[2], Value::Int(5));
  EXPECT_EQ(r.rows[1].values[0], Value::String("bob"));
  EXPECT_EQ(r.rows[1].values[1], Value::Int(3));
  EXPECT_EQ(r.rows[1].values[2], Value::Int(10));
}

TEST_F(AggregateDb, GroupLineageIsConjunction) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT customer, COUNT(*) FROM orders GROUP BY customer "
                "ORDER BY customer");
  ASSERT_EQ(r.rows.size(), 2u);
  // ann group: confidences 0.9 * 0.8; bob: 0.7 * 0.6 * 0.5.
  EXPECT_NEAR(r.rows[0].confidence, 0.72, 1e-12);
  EXPECT_NEAR(r.rows[1].confidence, 0.21, 1e-12);
}

TEST_F(AggregateDb, AvgMinMax) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT AVG(price) AS a, MIN(qty) AS lo, MAX(qty) AS hi, MIN(item) AS first "
      "FROM orders");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NEAR(*r.rows[0].values[0].AsDouble(), (2.5 + 10 + 2.5 + 10 + 4) / 5.0, 1e-12);
  EXPECT_EQ(r.rows[0].values[1], Value::Int(1));
  EXPECT_EQ(r.rows[0].values[2], Value::Int(5));
  EXPECT_EQ(r.rows[0].values[3], Value::String("belt"));
}

TEST_F(AggregateDb, SumOfDoublesIsDouble) {
  QueryResult r = *RunQuery(catalog_, "SELECT SUM(price * qty) FROM orders");
  EXPECT_NEAR(*r.rows[0].values[0].AsDouble(), 10.0 + 10.0 + 5.0 + 30.0 + 20.0, 1e-12);
  EXPECT_EQ(r.schema.column(0).type, DataType::kDouble);
}

TEST_F(AggregateDb, CountColumnSkipsNulls) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT site, COUNT(value) AS n, COUNT(*) AS rows_ FROM readings "
                "GROUP BY site ORDER BY site");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[1], Value::Int(1));  // a: one non-null
  EXPECT_EQ(r.rows[0].values[2], Value::Int(2));
  EXPECT_EQ(r.rows[1].values[1], Value::Int(0));  // b: all null
  EXPECT_EQ(r.rows[1].values[2], Value::Int(1));
}

TEST_F(AggregateDb, AggregatesOverAllNullsAreNull) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT SUM(value), AVG(value), MIN(value) FROM readings WHERE site = 'b'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0].values[0].is_null());
  EXPECT_TRUE(r.rows[0].values[1].is_null());
  EXPECT_TRUE(r.rows[0].values[2].is_null());
}

TEST_F(AggregateDb, GlobalAggregateOverEmptyInput) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT COUNT(*), SUM(qty) FROM orders WHERE customer = 'nobody'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[0], Value::Int(0));
  EXPECT_TRUE(r.rows[0].values[1].is_null());
  // Vacuous aggregation is certain.
  EXPECT_DOUBLE_EQ(r.rows[0].confidence, 1.0);
}

TEST_F(AggregateDb, GroupByEmptyInputProducesNoRows) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT customer, COUNT(*) FROM orders WHERE qty > 100 GROUP BY customer");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(AggregateDb, HavingFiltersGroups) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT customer, SUM(qty) AS total FROM orders GROUP BY customer "
      "HAVING SUM(qty) > 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("bob"));
}

TEST_F(AggregateDb, HavingWithoutGroupBy) {
  QueryResult none =
      *RunQuery(catalog_, "SELECT COUNT(*) FROM orders HAVING COUNT(*) > 10");
  EXPECT_TRUE(none.rows.empty());
  QueryResult one =
      *RunQuery(catalog_, "SELECT COUNT(*) FROM orders HAVING COUNT(*) > 2");
  EXPECT_EQ(one.rows.size(), 1u);
}

TEST_F(AggregateDb, ExpressionsOverAggregates) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT customer, SUM(price * qty) / SUM(qty) AS unit FROM orders "
      "GROUP BY customer ORDER BY customer");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_NEAR(*r.rows[0].values[1].AsDouble(), 20.0 / 5.0, 1e-12);   // ann
  EXPECT_NEAR(*r.rows[1].values[1].AsDouble(), 55.0 / 10.0, 1e-12);  // bob
}

TEST_F(AggregateDb, GroupByExpressionKey) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT qty * 0 + 1 AS bucket, COUNT(*) FROM orders GROUP BY qty * 0 + 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].values[1], Value::Int(5));
}

TEST_F(AggregateDb, MultiKeyGroupBy) {
  QueryResult r = *RunQuery(
      catalog_,
      "SELECT customer, item, COUNT(*) FROM orders GROUP BY customer, item");
  EXPECT_EQ(r.rows.size(), 5u);  // all pairs are distinct here
}

TEST_F(AggregateDb, ErrorsAreBindErrors) {
  // Non-key column in SELECT.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT item, COUNT(*) FROM orders GROUP BY customer")
                  .status()
                  .IsBindError());
  // Star with aggregation.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT * FROM orders GROUP BY customer")
                  .status()
                  .IsBindError());
  // Aggregate in WHERE.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT customer FROM orders WHERE SUM(qty) > 3 "
                                 "GROUP BY customer")
                  .status()
                  .IsBindError());
  // Nested aggregate.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT SUM(COUNT(*)) FROM orders")
                  .status()
                  .IsBindError());
  // SUM over strings.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT SUM(item) FROM orders").status().IsBindError());
  // Aggregate in GROUP BY.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT COUNT(*) FROM orders GROUP BY COUNT(*)")
                  .status()
                  .IsBindError());
  // Non-key column in HAVING.
  EXPECT_TRUE(RunQuery(catalog_, "SELECT customer FROM orders GROUP BY customer "
                                 "HAVING qty > 1")
                  .status()
                  .IsBindError());
}

TEST_F(AggregateDb, ParserRejectsStarInNonCount) {
  EXPECT_TRUE(RunQuery(catalog_, "SELECT SUM(*) FROM orders").status().IsParseError());
}

TEST_F(AggregateDb, OrderByAggregateAlias) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT customer, SUM(qty) AS total FROM orders GROUP BY customer "
                "ORDER BY total DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value::String("bob"));
}

TEST_F(AggregateDb, DistinctAfterAggregation) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT DISTINCT COUNT(*) FROM orders GROUP BY customer");
  // Counts are 2 and 3: distinct keeps both.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(AggregateDb, AggregatePlanRendered) {
  QueryResult r = *RunQuery(
      catalog_, "SELECT customer, COUNT(*) FROM orders GROUP BY customer");
  EXPECT_NE(r.plan_text.find("Aggregate"), std::string::npos);
  EXPECT_NE(r.plan_text.find("COUNT(*)"), std::string::npos);
}

}  // namespace
}  // namespace pcqe
