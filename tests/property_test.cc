// Property-based sweeps over random instances (parameterized gtest).
//
// Invariants checked across seeds:
//  P1. The heuristic B&B is exact: it matches brute force on every instance
//      small enough to enumerate.
//  P2. Approximate solvers (greedy, D&C) never beat the optimum and always
//      return assignments satisfying the solution invariants.
//  P3. Two-phase greedy never costs more than one-phase.
//  P4. Result confidences are probabilities and are monotone in base
//      confidences (for negation-free lineage).
//  P5. Solutions stay on the δ grid: every increment is a whole number of
//      δ steps (or lands exactly on the tuple's ceiling).

#include <gtest/gtest.h>

#include <cmath>

#include "lineage/evaluate.h"
#include "query/query_engine.h"
#include "strategy/brute_force.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

WorkloadParams SmallParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 5;
  params.num_results = 4;
  params.bases_per_result = 3;
  params.or_group_size = 2;
  params.theta = 0.5;
  params.beta = 0.4;
  params.seed = seed;
  return params;
}

class SmallInstanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallInstanceTest, HeuristicMatchesBruteForceOptimum) {
  Workload w = GenerateWorkload(SmallParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  IncrementSolution brute = *SolveBruteForce(p);
  IncrementSolution exact = *SolveHeuristic(p);
  ASSERT_TRUE(ValidateSolution(p, brute).ok());
  ASSERT_TRUE(ValidateSolution(p, exact).ok());
  EXPECT_EQ(brute.feasible, exact.feasible);
  if (brute.feasible) {
    EXPECT_NEAR(exact.total_cost, brute.total_cost, 1e-6)
        << "seed " << GetParam();
  }
}

TEST_P(SmallInstanceTest, EveryHeuristicToggleComboIsExact) {
  Workload w = GenerateWorkload(SmallParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  IncrementSolution brute = *SolveBruteForce(p);
  if (!brute.feasible) GTEST_SKIP() << "infeasible instance";
  for (int mask = 0; mask < 16; ++mask) {
    HeuristicOptions options;
    options.use_h1_ordering = mask & 1;
    options.use_h2 = mask & 2;
    options.use_h3 = mask & 4;
    options.use_h4 = mask & 8;
    IncrementSolution s = *SolveHeuristic(p, options);
    ASSERT_TRUE(ValidateSolution(p, s).ok());
    EXPECT_TRUE(s.feasible) << "seed " << GetParam() << " mask " << mask;
    EXPECT_NEAR(s.total_cost, brute.total_cost, 1e-6)
        << "seed " << GetParam() << " mask " << mask;
  }
}

TEST_P(SmallInstanceTest, ApproximationsNeverBeatOptimum) {
  Workload w = GenerateWorkload(SmallParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  IncrementSolution brute = *SolveBruteForce(p);
  IncrementSolution greedy = *SolveGreedy(p);
  IncrementSolution dnc = *SolveDnc(p);
  ASSERT_TRUE(ValidateSolution(p, greedy).ok());
  ASSERT_TRUE(ValidateSolution(p, dnc).ok());
  if (brute.feasible) {
    if (greedy.feasible) {
      EXPECT_GE(greedy.total_cost, brute.total_cost - 1e-6);
    }
    if (dnc.feasible) {
      EXPECT_GE(dnc.total_cost, brute.total_cost - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallInstanceTest,
                         ::testing::Range<uint64_t>(1, 16));

WorkloadParams MediumParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 120;
  params.num_results = 50;
  params.bases_per_result = 5;
  params.seed = seed;
  return params;
}

class MediumInstanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MediumInstanceTest, GreedyAndDncProduceValidFeasibleSolutions) {
  Workload w = GenerateWorkload(MediumParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  IncrementSolution greedy = *SolveGreedy(p);
  IncrementSolution dnc = *SolveDnc(p);
  ASSERT_TRUE(ValidateSolution(p, greedy).ok());
  ASSERT_TRUE(ValidateSolution(p, dnc).ok());
  // Everything is raisable to 1.0, so these workloads are always feasible.
  EXPECT_TRUE(greedy.feasible);
  EXPECT_TRUE(dnc.feasible);
}

TEST_P(MediumInstanceTest, TwoPhaseDominatesOnePhase) {
  Workload w = GenerateWorkload(MediumParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  GreedyOptions one_phase;
  one_phase.two_phase = false;
  IncrementSolution s1 = *SolveGreedy(p, one_phase);
  IncrementSolution s2 = *SolveGreedy(p);
  ASSERT_TRUE(s1.feasible);
  ASSERT_TRUE(s2.feasible);
  EXPECT_LE(s2.total_cost, s1.total_cost + 1e-9);
}

TEST_P(MediumInstanceTest, SolutionsStayOnTheDeltaGrid) {
  Workload w = GenerateWorkload(MediumParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  for (const IncrementSolution& s : {*SolveGreedy(p), *SolveDnc(p)}) {
    for (size_t i = 0; i < s.new_confidence.size(); ++i) {
      double from = p.base(i).confidence;
      double to = s.new_confidence[i];
      if (ApproxEqual(from, to) || ApproxEqual(to, p.base(i).max_confidence)) continue;
      double steps = (to - from) / p.delta();
      EXPECT_NEAR(steps, std::round(steps), 1e-6)
          << "base " << i << " moved off-grid: " << from << " -> " << to;
    }
  }
}

TEST_P(MediumInstanceTest, ConfidencesAreProbabilitiesAndMonotone) {
  Workload w = GenerateWorkload(MediumParams(GetParam()));
  IncrementProblem p = *w.ToProblem();
  std::vector<double> probs = p.InitialProbs();
  Rng rng(GetParam() * 7919);
  for (size_t r = 0; r < p.num_results(); ++r) {
    double f = p.EvalResult(r, probs);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Raise a random tuple; every affected result must not decrease (P4).
  for (int trial = 0; trial < 20; ++trial) {
    size_t i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(p.num_base_tuples()) - 1));
    std::vector<double> before_vals;
    for (uint32_t r : p.results_of_base(i)) before_vals.push_back(p.EvalResult(r, probs));
    double old = probs[i];
    probs[i] = std::min(1.0, old + 0.2);
    size_t idx = 0;
    for (uint32_t r : p.results_of_base(i)) {
      EXPECT_GE(p.EvalResult(r, probs), before_vals[idx++] - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumInstanceTest,
                         ::testing::Range<uint64_t>(100, 108));

// Failure injection: cost functions with extreme coefficients, ceilings
// below beta, and required == all results.
TEST(StressTest, CeilingsBelowBetaMakeInstanceInfeasible) {
  auto arena = std::make_shared<LineageArena>();
  std::vector<LineageRef> results;
  std::vector<BaseTupleSpec> specs;
  for (LineageVarId i = 0; i < 6; ++i) {
    results.push_back(arena->Var(i));
    specs.push_back({i, 0.1, 0.4, nullptr});  // ceiling 0.4 < beta 0.6
  }
  ProblemOptions options;
  options.beta = 0.6;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, results, specs, 3, options);
  for (const IncrementSolution& s :
       {*SolveBruteForce(p), *SolveHeuristic(p), *SolveGreedy(p), *SolveDnc(p)}) {
    EXPECT_FALSE(s.feasible) << s.algorithm;
    ASSERT_TRUE(ValidateSolution(p, s).ok()) << s.algorithm;
  }
}

TEST(StressTest, RequiredEqualsAllResults) {
  WorkloadParams params;
  params.num_base_tuples = 40;
  params.num_results = 15;
  params.bases_per_result = 4;
  params.theta = 1.0;
  params.seed = 33;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  EXPECT_EQ(p.required(0), 15u);
  IncrementSolution greedy = *SolveGreedy(p);
  IncrementSolution dnc = *SolveDnc(p);
  EXPECT_TRUE(greedy.feasible);
  EXPECT_TRUE(dnc.feasible);
  ASSERT_TRUE(ValidateSolution(p, greedy).ok());
  ASSERT_TRUE(ValidateSolution(p, dnc).ok());
}

TEST(StressTest, ExtremeCostScalesStayFinite) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->Or(arena->Var(1), arena->Var(2));
  std::vector<BaseTupleSpec> specs = {
      {1, 0.1, 1.0, *MakeExponentialCost(1e6, 3.0)},
      {2, 0.1, 1.0, *MakeLogarithmicCost(1e-3, 20.0)},
  };
  ProblemOptions options;
  options.beta = 0.5;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 1, options);
  IncrementSolution s = *SolveHeuristic(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_TRUE(std::isfinite(s.total_cost));
  // The log-cost tuple is dramatically cheaper; the optimum must use it.
  auto actions = s.Actions(p);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].base_tuple, 2u);
}

// Random relational workloads: lineage produced by the query engine obeys
// the probabilistic-database laws.
class QueryLineageTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    Table* left = *catalog_.CreateTable(
        "l", Schema({{"k", DataType::kInt64, ""}, {"v", DataType::kInt64, ""}}));
    Table* right = *catalog_.CreateTable(
        "r", Schema({{"k", DataType::kInt64, ""}, {"w", DataType::kInt64, ""}}));
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(left->Insert({Value::Int(rng.UniformInt(0, 5)),
                                Value::Int(rng.UniformInt(0, 100))},
                               rng.Uniform(0.05, 0.95))
                      .ok());
      ASSERT_TRUE(right->Insert({Value::Int(rng.UniformInt(0, 5)),
                                 Value::Int(rng.UniformInt(0, 100))},
                                rng.Uniform(0.05, 0.95))
                      .ok());
    }
  }

  Catalog catalog_;
};

TEST_P(QueryLineageTest, ConfidenceMatchesExactEvaluationWhenReadOnce) {
  // P6. For every produced row, the engine's confidence (independence
  // semantics) equals the exact Shannon evaluation whenever the lineage is
  // read-once, and both stay in [0, 1] regardless.
  for (const char* sql :
       {"SELECT DISTINCT k FROM l",
        "SELECT l.k FROM l JOIN r ON l.k = r.k AND l.v < r.w",
        "SELECT k FROM l UNION SELECT k FROM r",
        "SELECT k FROM l EXCEPT SELECT k FROM r WHERE w > 50",
        "SELECT k FROM l INTERSECT SELECT k FROM r"}) {
    QueryResult result = *RunQuery(catalog_, sql);
    ConfidenceMap probs = *SnapshotConfidences(catalog_, result);
    for (const QueryResult::Row& row : result.rows) {
      EXPECT_GE(row.confidence, 0.0) << sql;
      EXPECT_LE(row.confidence, 1.0) << sql;
      if (result.arena->IsReadOnce(row.lineage)) {
        EXPECT_NEAR(row.confidence, *EvaluateExact(*result.arena, row.lineage, probs),
                    1e-9)
            << sql;
      }
    }
  }
}

TEST_P(QueryLineageTest, DistinctDominatesAndJoinIsDominated) {
  // P7. OR-merging never lowers confidence below the best duplicate; AND
  // never exceeds either operand.
  QueryResult raw = *RunQuery(catalog_, "SELECT k FROM l");
  QueryResult distinct = *RunQuery(catalog_, "SELECT DISTINCT k FROM l");
  for (const QueryResult::Row& d : distinct.rows) {
    double best_dup = 0.0;
    for (const QueryResult::Row& r : raw.rows) {
      if (r.values[0].Equals(d.values[0])) best_dup = std::max(best_dup, r.confidence);
    }
    EXPECT_GE(d.confidence, best_dup - 1e-12);
  }

  QueryResult join =
      *RunQuery(catalog_, "SELECT l.k FROM l JOIN r ON l.k = r.k");
  ConfidenceMap probs = *SnapshotConfidences(catalog_, join);
  for (const QueryResult::Row& row : join.rows) {
    for (LineageVarId id : join.arena->Variables(row.lineage)) {
      EXPECT_LE(row.confidence, probs.Get(id) + 1e-12);
    }
  }
}

TEST_P(QueryLineageTest, ImprovementMonotonicityEndToEnd) {
  // P8. Raising any base tuple's confidence never lowers any negation-free
  // query result's confidence.
  QueryResult result = *RunQuery(
      catalog_, "SELECT DISTINCT l.k FROM l JOIN r ON l.k = r.k");
  std::vector<double> before;
  before.reserve(result.rows.size());
  for (const auto& row : result.rows) before.push_back(row.confidence);

  Rng rng(GetParam() * 31);
  const Table* l = *catalog_.GetTable("l");
  for (int trial = 0; trial < 5; ++trial) {
    size_t row = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(l->num_tuples()) - 1));
    const Tuple& t = l->tuple(row);
    ASSERT_TRUE(
        catalog_.SetConfidence(t.id(), std::min(1.0, t.confidence() + 0.3)).ok());
  }
  ConfidenceMap fresh = *SnapshotConfidences(catalog_, result);
  result.RecomputeConfidences(fresh);
  for (size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_GE(result.rows[i].confidence, before[i] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryLineageTest, ::testing::Range<uint64_t>(1, 7));

TEST(StressTest, ZeroRequiredIsTriviallyFeasible) {
  auto arena = std::make_shared<LineageArena>();
  LineageRef f = arena->Var(1);
  std::vector<BaseTupleSpec> specs = {{1, 0.1, 1.0, nullptr}};
  ProblemOptions options;
  options.beta = 0.9;
  IncrementProblem p = *IncrementProblem::BuildSingle(arena, {f}, specs, 0, options);
  for (const IncrementSolution& s :
       {*SolveBruteForce(p), *SolveHeuristic(p), *SolveGreedy(p), *SolveDnc(p)}) {
    EXPECT_TRUE(s.feasible) << s.algorithm;
    EXPECT_NEAR(s.total_cost, 0.0, 1e-12) << s.algorithm;
  }
}

}  // namespace
}  // namespace pcqe
