// Differential harness for the vectorized execution core: the row-at-a-time
// interpreter (query/executor.h) is the reference; the column-chunk
// interpreter (query/vec_executor.h) must be *bit-identical* — same values,
// same row order, the exact same IEEE doubles for every confidence, the same
// released sets and solver costs through the full engine pipeline.
//
// Three layers of checking:
//  - a seeded sweep of 120+ random catalog/query instances spanning scans,
//    kernelized and fallback filters, factorized joins (with duplicate keys),
//    DISTINCT / GROUP BY / set ops, ORDER BY and LIMIT;
//  - chunk-topology edge cases: empty tables, singletons, and tables sized
//    exactly at / one off the 2048-row chunk boundary, with selections that
//    straddle it;
//  - engine-level parity: released row sets, released fractions and strategy
//    proposal costs across a β sweep, row vs. vectorized.
//
// On failure the seed prints via SCOPED_TRACE; replay with
// `BuildSweepCatalog(seed, ...)` + `SweepQuery(seed)`.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "cost/cost_function.h"
#include "engine/pcqe_engine.h"
#include "query/query_engine.h"
#include "relational/catalog.h"
#include "relational/column_chunk.h"

namespace pcqe {
namespace {

// orders(id INT64, customer INT64, amount DOUBLE, tag STRING) plus
// customers(customer INT64, region STRING). Customer keys are drawn from a
// small domain so joins see duplicate build keys and factorized groups with
// more than one member.
void BuildSweepCatalog(uint64_t seed, size_t num_orders, Catalog* catalog) {
  Rng rng(0xC0FFEE ^ seed);
  Table* orders = *catalog->CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"customer", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""},
                        {"tag", DataType::kString, ""}}));
  int64_t key_domain = static_cast<int64_t>(num_orders / 3) + 2;
  for (size_t i = 0; i < num_orders; ++i) {
    ASSERT_TRUE(orders
                    ->Insert({Value::Int(static_cast<int64_t>(i)),
                              Value::Int(rng.UniformInt(0, key_domain)),
                              Value::Double(rng.Uniform(0.0, 1000.0)),
                              Value::String(StrFormat("tag-%d", static_cast<int>(
                                                                    rng.UniformInt(0, 4))))},
                             rng.Uniform(0.05, 0.95))
                    .ok());
  }
  Table* customers = *catalog->CreateTable(
      "customers", Schema({{"customer", DataType::kInt64, ""},
                           {"region", DataType::kString, ""}}));
  for (int64_t c = 0; c <= key_domain; ++c) {
    // Leave some keys dangling so probes miss, and duplicate a few so the
    // generic multi-match path runs on the build side too.
    if (rng.Bernoulli(0.15)) continue;
    size_t copies = rng.Bernoulli(0.2) ? 2 : 1;
    for (size_t k = 0; k < copies; ++k) {
      ASSERT_TRUE(customers
                      ->Insert({Value::Int(c), Value::String(StrFormat(
                                                   "region-%d", static_cast<int>(c % 7)))},
                               rng.Uniform(0.05, 0.95))
                      .ok());
    }
  }
}

// A query family covering every vectorized operator and both the typed
// kernels and the row-at-a-time fallback (string predicates, computed
// projections). Literals derive from the seed so selectivities vary.
std::string SweepQuery(uint64_t seed) {
  double amount = 100.0 + 60.0 * static_cast<double>(seed % 13);
  int64_t key = static_cast<int64_t>(seed % 9);
  int tag = static_cast<int>(seed % 5);
  switch (seed % 16) {
    case 0:
      return "SELECT * FROM orders";
    case 1:
      return StrFormat("SELECT id, amount FROM orders WHERE amount < %g", amount);
    case 2:
      return StrFormat(
          "SELECT * FROM orders WHERE customer = %lld AND amount > %g",
          static_cast<long long>(key), amount);
    case 3:  // flipped literal-column comparison
      return StrFormat("SELECT id FROM orders WHERE %g > amount", amount);
    case 4:
      return "SELECT o.id, c.region FROM orders AS o "
             "JOIN customers AS c ON o.customer = c.customer";
    case 5:
      return StrFormat(
          "SELECT o.id, c.region FROM orders AS o "
          "JOIN customers AS c ON o.customer = c.customer WHERE o.amount < %g",
          amount);
    case 6:
      return StrFormat("SELECT DISTINCT customer FROM orders WHERE amount < %g",
                       amount);
    case 7:
      return "SELECT customer, COUNT(*) AS n, SUM(amount) AS total "
             "FROM orders GROUP BY customer";
    case 8:
      return "SELECT customer FROM orders UNION SELECT customer FROM customers";
    case 9:
      return StrFormat(
          "SELECT customer FROM orders EXCEPT "
          "SELECT customer FROM customers WHERE customer > %lld",
          static_cast<long long>(key));
    case 10:
      return "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 7";
    case 11:  // string predicate (no typed kernel) + computed projection
      return StrFormat(
          "SELECT id, amount * 2 + 1 AS v FROM orders WHERE tag = 'tag-%d'", tag);
    case 12:  // equi-join with a residual conjunct in the ON clause
      return StrFormat(
          "SELECT o.id, c.region FROM orders AS o "
          "JOIN customers AS c ON o.customer = c.customer AND o.amount > %g",
          amount);
    case 13:
      return StrFormat(
          "SELECT customer, COUNT(*) AS n FROM orders WHERE amount > %g "
          "GROUP BY customer ORDER BY customer",
          amount);
    case 14:
      return "SELECT customer FROM orders INTERSECT SELECT customer FROM customers";
    default:  // the paper's running-example shape: DISTINCT subquery + join
      return StrFormat(
          "SELECT c.customer, c.region FROM "
          "(SELECT DISTINCT customer FROM orders WHERE amount < %g) AS a "
          "JOIN customers AS c ON a.customer = c.customer",
          amount);
  }
}

// Bit-identity: values compare with Value::operator== and confidences with
// exact double equality (no tolerance — the contract is the same IEEE bits).
void ExpectBitIdentical(const QueryResult& row_result, const QueryResult& vec_result) {
  ASSERT_EQ(row_result.schema.num_columns(), vec_result.schema.num_columns());
  ASSERT_EQ(row_result.rows.size(), vec_result.rows.size());
  for (size_t r = 0; r < row_result.rows.size(); ++r) {
    SCOPED_TRACE(::testing::Message() << "row " << r);
    const QueryResult::Row& a = row_result.rows[r];
    const QueryResult::Row& b = vec_result.rows[r];
    ASSERT_EQ(a.values.size(), b.values.size());
    for (size_t c = 0; c < a.values.size(); ++c) {
      EXPECT_EQ(a.values[c], b.values[c]) << "column " << c;
    }
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

void RunBothAndCompare(const Catalog& catalog, const std::string& sql) {
  SCOPED_TRACE(::testing::Message() << "query: " << sql);
  Result<QueryResult> row_result =
      RunQuery(catalog, sql, nullptr, ExecutionMode::kRow);
  Result<QueryResult> vec_result =
      RunQuery(catalog, sql, nullptr, ExecutionMode::kVectorized);
  ASSERT_EQ(row_result.ok(), vec_result.ok());
  ASSERT_TRUE(row_result.ok()) << row_result.status().ToString();
  EXPECT_EQ(row_result->mode, ExecutionMode::kRow);
  EXPECT_EQ(vec_result->mode, ExecutionMode::kVectorized);
  ExpectBitIdentical(*row_result, *vec_result);

  // The engine's serving configuration (deferred boxing): confidences must
  // come out bit-identical without any materialization, and boxing values +
  // interning lineage on demand must reproduce the eager result exactly.
  Result<QueryResult> deferred = RunQuery(catalog, sql, nullptr,
                                          ExecutionMode::kVectorized,
                                          /*materialize_values=*/false);
  ASSERT_TRUE(deferred.ok()) << deferred.status().ToString();
  ASSERT_EQ(deferred->rows.size(), row_result->rows.size());
  for (size_t r = 0; r < deferred->rows.size(); ++r) {
    EXPECT_EQ(deferred->rows[r].confidence, row_result->rows[r].confidence)
        << "deferred confidence, row " << r;
  }
  deferred->MaterializeLineage();
  deferred->MaterializeValues();
  ExpectBitIdentical(*row_result, *deferred);
}

// ≥ 100 seeded instances (the harness contract); sizes cycle through small
// tables, a prime mid-size and an exact chunk multiple.
TEST(VectorizedDifferential, SeededSweepIsBitIdentical) {
  constexpr uint64_t kNumInstances = 128;
  constexpr size_t kSizes[] = {0, 1, 3, 17, 100, 257, 500};
  for (uint64_t seed = 0; seed < kNumInstances; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Catalog catalog;
    BuildSweepCatalog(seed, kSizes[seed % (sizeof(kSizes) / sizeof(kSizes[0]))],
                      &catalog);
    RunBothAndCompare(catalog, SweepQuery(seed));
  }
}

// Chunk topology: table sizes at and around the 2048-row boundary, with a
// filter whose survivors straddle chunks and a join on top.
TEST(VectorizedDifferential, ChunkBoundarySizes) {
  for (size_t rows : {kColumnChunkCapacity - 1, kColumnChunkCapacity,
                      kColumnChunkCapacity + 1, 2 * kColumnChunkCapacity + 1}) {
    SCOPED_TRACE(::testing::Message() << "rows " << rows);
    Catalog catalog;
    BuildSweepCatalog(/*seed=*/rows, rows, &catalog);
    // Survivor window centered on the chunk boundary (ids are sequential).
    std::string straddle = StrFormat(
        "SELECT id, amount FROM orders WHERE id > %zu AND id < %zu",
        kColumnChunkCapacity - 40, kColumnChunkCapacity + 40);
    RunBothAndCompare(catalog, straddle);
    RunBothAndCompare(catalog,
                      "SELECT o.id, c.region FROM orders AS o "
                      "JOIN customers AS c ON o.customer = c.customer "
                      "WHERE o.amount < 500.0");
    RunBothAndCompare(catalog, "SELECT COUNT(*), SUM(amount) FROM orders");
  }
}

TEST(VectorizedDifferential, EmptyAndSingletonTables) {
  Catalog catalog;
  BuildSweepCatalog(/*seed=*/1, /*num_orders=*/0, &catalog);
  RunBothAndCompare(catalog, "SELECT * FROM orders");
  RunBothAndCompare(catalog, "SELECT * FROM orders WHERE amount > 10.0");
  RunBothAndCompare(catalog,
                    "SELECT o.id FROM orders AS o "
                    "JOIN customers AS c ON o.customer = c.customer");
  RunBothAndCompare(catalog, "SELECT COUNT(*) FROM orders");

  Catalog one;
  BuildSweepCatalog(/*seed=*/2, /*num_orders=*/1, &one);
  RunBothAndCompare(one, "SELECT * FROM orders");
  RunBothAndCompare(one, "SELECT customer, COUNT(*) FROM orders GROUP BY customer");
}

// Deferred (unboxed) results must box the same values on demand, row by row
// (ValuesOfRow) or in bulk (MaterializeValues), and render via ToTable.
TEST(VectorizedDifferential, DeferredValuesBoxOnDemand) {
  Catalog catalog;
  BuildSweepCatalog(/*seed=*/5, /*num_orders=*/100, &catalog);
  const std::string sql =
      "SELECT o.id, c.region FROM orders AS o "
      "JOIN customers AS c ON o.customer = c.customer WHERE o.amount < 700.0";
  QueryResult eager = *RunQuery(catalog, sql, nullptr, ExecutionMode::kVectorized,
                                /*materialize_values=*/true);
  QueryResult deferred = *RunQuery(catalog, sql, nullptr, ExecutionMode::kVectorized,
                                   /*materialize_values=*/false);
  ASSERT_TRUE(deferred.values_deferred());
  ASSERT_EQ(eager.rows.size(), deferred.rows.size());
  for (size_t i = 0; i < eager.rows.size(); ++i) {
    EXPECT_TRUE(deferred.rows[i].values.empty());
    EXPECT_EQ(deferred.ValuesOfRow(i), eager.rows[i].values);
    EXPECT_EQ(deferred.rows[i].confidence, eager.rows[i].confidence);
  }
  EXPECT_EQ(deferred.ToTable(10), eager.ToTable(10));
  deferred.MaterializeValues();
  EXPECT_FALSE(deferred.values_deferred());
  for (size_t i = 0; i < eager.rows.size(); ++i) {
    EXPECT_EQ(deferred.rows[i].values, eager.rows[i].values);
  }
}

// Fully deferred results (pure scan/filter/join/sort/limit pipelines) build
// no lineage nodes at all — confidences fold nodelessly over the factorized
// form — and intern the row engine's exact formulas on demand.
TEST(VectorizedDifferential, DeferredLineageBoxesRowEngineFormulas) {
  Catalog catalog;
  BuildSweepCatalog(/*seed=*/11, /*num_orders=*/300, &catalog);
  for (const std::string& sql : std::vector<std::string>{
           "SELECT * FROM orders",
           "SELECT id FROM orders WHERE amount < 600.0",
           "SELECT o.id, c.region FROM orders AS o "
           "JOIN customers AS c ON o.customer = c.customer",
           "SELECT o.id FROM orders AS o "
           "JOIN customers AS c ON o.customer = c.customer "
           "WHERE o.amount > 100.0 ORDER BY o.id LIMIT 50"}) {
    SCOPED_TRACE(::testing::Message() << "query: " << sql);
    QueryResult row = *RunQuery(catalog, sql, nullptr, ExecutionMode::kRow);
    QueryResult deferred = *RunQuery(catalog, sql, nullptr,
                                     ExecutionMode::kVectorized,
                                     /*materialize_values=*/false);
    ASSERT_TRUE(deferred.lineage_deferred());
    EXPECT_EQ(deferred.arena->size(), 0u);  // nothing interned at all
    ASSERT_EQ(row.rows.size(), deferred.rows.size());
    for (size_t i = 0; i < row.rows.size(); ++i) {
      EXPECT_EQ(deferred.rows[i].lineage, kNullLineage);
      EXPECT_EQ(deferred.rows[i].confidence, row.rows[i].confidence);
    }
    deferred.MaterializeLineage();
    EXPECT_FALSE(deferred.lineage_deferred());
    ConfidenceMap probs = *SnapshotConfidences(catalog, deferred);
    for (size_t i = 0; i < row.rows.size(); ++i) {
      // Same formula as the row engine, and re-evaluating it must land on
      // the exact double the nodeless fold produced.
      EXPECT_EQ(deferred.arena->ToString(deferred.rows[i].lineage),
                row.arena->ToString(row.rows[i].lineage));
      EXPECT_EQ(EvaluateIndependent(*deferred.arena, deferred.rows[i].lineage, probs),
                deferred.rows[i].confidence);
    }
  }
  // Grouped pipelines carry per-group formulas already; only values defer.
  QueryResult grouped = *RunQuery(catalog, "SELECT DISTINCT customer FROM orders",
                                  nullptr, ExecutionMode::kVectorized,
                                  /*materialize_values=*/false);
  EXPECT_TRUE(grouped.values_deferred());
  EXPECT_FALSE(grouped.lineage_deferred());
}

// The vectorized scan must report chunk/batch telemetry.
TEST(VectorizedDifferential, StatsCountChunksAndGroups) {
  Catalog catalog;
  BuildSweepCatalog(/*seed=*/3, kColumnChunkCapacity + 10, &catalog);
  QueryResult scan = *RunQuery(catalog, "SELECT * FROM orders", nullptr,
                               ExecutionMode::kVectorized);
  EXPECT_EQ(scan.vec_stats.chunks_scanned, 2u);
  EXPECT_EQ(scan.vec_stats.rows_scanned, kColumnChunkCapacity + 10);

  QueryResult join = *RunQuery(catalog,
                               "SELECT o.id FROM orders AS o "
                               "JOIN customers AS c ON o.customer = c.customer",
                               nullptr, ExecutionMode::kVectorized);
  EXPECT_GT(join.vec_stats.join_groups, 0u);
  EXPECT_GT(join.vec_stats.max_group_rows, 1u);

  QueryResult row_mode =
      *RunQuery(catalog, "SELECT * FROM orders", nullptr, ExecutionMode::kRow);
  EXPECT_EQ(row_mode.vec_stats.rows_scanned, 0u);
}

// Engine-level parity: the released row set, released fraction and the
// strategy proposal (feasibility + exact cost) must match across modes for
// every β. Solver costs are a function of the blocked rows' lineage, so any
// drift in lineage or confidence surfaces here as a cost mismatch.
TEST(VectorizedDifferential, EnginePipelineParityAcrossBeta) {
  // One grouped query (eager per-group lineage) and one pure pipeline (fully
  // deferred lineage, interned only when the solver needs the blocked rows).
  for (const char* sql : {"SELECT DISTINCT customer FROM orders WHERE amount < 600.0",
                          "SELECT id, amount FROM orders WHERE amount < 600.0"}) {
  for (double beta : {0.02, 0.10, 0.30, 0.60, 0.90}) {
    SCOPED_TRACE(::testing::Message() << "beta " << beta << " query " << sql);
    std::vector<std::unique_ptr<Catalog>> catalogs;
    std::vector<QueryOutcome> outcomes;
    for (ExecutionMode mode : {ExecutionMode::kRow, ExecutionMode::kVectorized}) {
      auto catalog = std::make_unique<Catalog>();
      Rng rng(99);
      Table* orders = *catalog->CreateTable(
          "orders", Schema({{"id", DataType::kInt64, ""},
                            {"customer", DataType::kInt64, ""},
                            {"amount", DataType::kDouble, ""}}));
      for (int64_t i = 0; i < 40; ++i) {
        ASSERT_TRUE(orders
                        ->Insert({Value::Int(i), Value::Int(i % 7),
                                  Value::Double(rng.Uniform(0.0, 1000.0))},
                                 rng.Uniform(0.05, 0.95),
                                 *MakeLinearCost(10.0 * static_cast<double>(1 + i % 5)))
                        .ok());
      }
      RoleGraph roles;
      ASSERT_TRUE(roles.AddRole("Analyst").ok());
      ASSERT_TRUE(roles.AddUser("ana").ok());
      ASSERT_TRUE(roles.AssignRole("ana", "Analyst").ok());
      PolicyStore policies;
      ASSERT_TRUE(policies.AddPolicy(roles, {"Analyst", "analysis", beta}).ok());
      auto engine = std::make_unique<PcqeEngine>(catalog.get(), std::move(roles),
                                                 std::move(policies));
      engine->execution_mode = mode;
      QueryRequest request{sql, "ana", "analysis", 1.0};
      outcomes.push_back(*engine->Submit(request));
      catalogs.push_back(std::move(catalog));
    }
    QueryOutcome& row_out = outcomes[0];
    QueryOutcome& vec_out = outcomes[1];
    // The engine defers value boxing on the vectorized path; box before the
    // bit-identity comparison (also exercises the deferred materializer).
    EXPECT_TRUE(vec_out.intermediate.values_deferred());
    vec_out.intermediate.MaterializeValues();
    row_out.intermediate.MaterializeValues();
    EXPECT_EQ(row_out.released, vec_out.released);
    EXPECT_EQ(row_out.released_fraction, vec_out.released_fraction);
    EXPECT_EQ(row_out.proposal.needed, vec_out.proposal.needed);
    EXPECT_EQ(row_out.proposal.feasible, vec_out.proposal.feasible);
    EXPECT_EQ(row_out.proposal.total_cost, vec_out.proposal.total_cost);
    EXPECT_EQ(row_out.proposal.actions.size(), vec_out.proposal.actions.size());
    ExpectBitIdentical(row_out.intermediate, vec_out.intermediate);
  }
  }
}

}  // namespace
}  // namespace pcqe
