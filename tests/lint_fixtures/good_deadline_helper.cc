// pcqe-lint-fixture-path: src/service/good_deadline_helper.cc
// Fixture: budget checks through the Deadline helper are fine, as is
// elapsed-time arithmetic on now() (no comparison operator adjacent).
#include <chrono>

#include "common/deadline.h"

namespace pcqe {

using Clock = std::chrono::steady_clock;

bool BudgetLeft(const Deadline& deadline) { return !deadline.Expired(); }

double ElapsedSeconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

}  // namespace pcqe
