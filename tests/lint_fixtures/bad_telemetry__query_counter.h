// pcqe-lint-fixture-path: src/query/frob_stats.h
// Fixture: counter-shaped member in a src/query/ header outside
// execution_mode.h; executor stats must flow through VecExecStats,
// OperatorProfile, or a registry Counter.

#ifndef PCQE_QUERY_FROB_STATS_H_
#define PCQE_QUERY_FROB_STATS_H_

#include <cstdint>

namespace pcqe {

class FrobExecutor {
 public:
  void Frob() { ++rows_emitted_; }

 private:
  uint64_t rows_emitted_ = 0;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_FROB_STATS_H_
