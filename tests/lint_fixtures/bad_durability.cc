// pcqe-lint-fixture-path: src/example/bad_durability.cc
// Fixture: a confidence write outside the logged improve/storage path.
// With durability on this mutation never reaches the WAL, so a crash
// silently loses it and replay's version check desynchronizes.

namespace pcqe {

class Catalog;

Status Nudge(Catalog* catalog, unsigned long long tuple) {
  return catalog->SetConfidence(tuple, 0.9);
}

}  // namespace pcqe
