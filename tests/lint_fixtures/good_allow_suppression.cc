// pcqe-lint-fixture-path: src/example/good_allow.cc
// Fixture: every rule can be suppressed line-by-line with an allow comment.
#include <cassert>
#include <iostream>

#include "common/status.h"

namespace pcqe {

Status WriteThrough(int n);

void Suppressed(int n) {
  assert(n >= 0);                          // pcqe-lint: allow(bare-assert)
  std::cout << n << "\n";                  // pcqe-lint: allow(iostream-in-src)
  WriteThrough(n);                         // pcqe-lint: allow(discarded-status)
}

}  // namespace pcqe
