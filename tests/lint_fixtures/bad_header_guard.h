// pcqe-lint-fixture-path: src/example/bad_guard.h
// Fixture: guard does not spell the path (expected PCQE_EXAMPLE_BAD_GUARD_H_).
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace pcqe {
struct GuardExample {};
}  // namespace pcqe

#endif  // WRONG_GUARD_NAME_H
