// pcqe-lint-fixture-path: src/example/bad_assert.cc
// Fixture: bare assert() vanishes under NDEBUG; must be PCQE_CHECK/PCQE_DCHECK.
#include <cassert>

namespace pcqe {

int Halve(int n) {
  assert(n % 2 == 0);
  return n / 2;
}

}  // namespace pcqe
