// pcqe-lint-fixture-path: src/example/bad_valueordie.cc
// Fixture: ValueOrDie() with no ok() check in the preceding window.
#include "common/result.h"

namespace pcqe {

Result<int> Forty();

int UseUnchecked() {
  Result<int> r = Forty();
  int a = 0;
  int b = 1;
  int c = 2;
  int d = 3;
  int e = 4;
  return r.ValueOrDie() + a + b + c + d + e;
}

}  // namespace pcqe
