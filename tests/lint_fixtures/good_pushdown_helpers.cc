// pcqe-lint-fixture-path: src/engine/example.cc
// Fixture: the sanctioned ways to test a confidence against beta — the
// shared helpers own the strict > beta + kEpsilon convention.
namespace pcqe {

struct PolicyDecision {
  double threshold = 0.0;
  bool Allows(double p) const;
};

bool ReleasedByPolicy(const PolicyDecision& decision, double confidence) {
  return decision.Allows(confidence);
}

bool ReleasedBySolver(double confidence, double beta) {
  return ClearsThreshold(confidence, beta);
}

// A deliberate out-of-band comparison may suppress explicitly.
bool Diagnostic(double confidence, double beta) {
  return confidence > beta;  // pcqe-lint: allow(pushdown)
}

}  // namespace pcqe
