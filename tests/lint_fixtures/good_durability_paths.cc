// pcqe-lint-fixture-path: src/storage/example_replay.cc
// Fixture: src/storage/ (like src/relational/ and src/improve/) is the
// sanctioned home of confidence writes — replay reconstructs the catalog
// from logged records, so the durability rule must not fire here.

namespace pcqe {

class Catalog;

Status Replay(Catalog* catalog, unsigned long long tuple, double to) {
  return catalog->SetConfidence(tuple, to);
}

}  // namespace pcqe
