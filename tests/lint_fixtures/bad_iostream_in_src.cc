// pcqe-lint-fixture-path: src/example/bad_iostream.cc
// Fixture: direct std::cout use in library code.
#include <iostream>

namespace pcqe {

void Report(int n) { std::cout << "n = " << n << "\n"; }

}  // namespace pcqe
