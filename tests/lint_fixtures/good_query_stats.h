// pcqe-lint-fixture-path: src/query/good_stats.h
// Fixture: sanctioned ways to carry stats near the executors — a suppressed
// non-stat member (an id, not a counter) and values routed through the
// OperatorProfiler. Every rule must stay quiet.

#ifndef PCQE_QUERY_GOOD_STATS_H_
#define PCQE_QUERY_GOOD_STATS_H_

#include <cstdint>

#include "telemetry/profile.h"

namespace pcqe {

class GoodExecutor {
 public:
  explicit GoodExecutor(OperatorProfiler* profiler) : profiler_(profiler) {}

  void Finish(size_t node, uint64_t rows) {
    OperatorProfiler::Extra extra;
    extra.chunks = 1;
    if (profiler_ != nullptr) profiler_->End(node, rows, extra);
  }

 private:
  OperatorProfiler* profiler_;
  uint64_t epoch_id_ = 0;  // pcqe-lint: allow(telemetry)
};

}  // namespace pcqe

#endif  // PCQE_QUERY_GOOD_STATS_H_
