// pcqe-lint-fixture-path: src/telemetry/good_telemetry.cc
// Fixture: src/telemetry/ itself implements the instruments, so atomic
// counters are its business; elsewhere a version counter may be suppressed.
#include <atomic>
#include <cstdint>

namespace pcqe {

class Counter2 {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace pcqe
