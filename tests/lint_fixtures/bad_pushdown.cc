// pcqe-lint-fixture-path: src/engine/example.cc
// Fixture: a hand-rolled confidence-vs-beta comparison outside the
// sanctioned files. This one drops the kEpsilon slack — exactly the drift
// the rule exists to catch.
namespace pcqe {

bool LeakyKeepTest(double confidence, double beta) {
  return confidence > beta;
}

}  // namespace pcqe
