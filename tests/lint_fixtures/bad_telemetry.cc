// pcqe-lint-fixture-path: src/example/bad_telemetry.cc
// Fixture: ad-hoc atomic stat counter; must go through the TelemetryRegistry.
#include <atomic>
#include <cstdint>

namespace pcqe {

class Frobnicator {
 public:
  void Frob() { frobs_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> frobs_{0};
};

}  // namespace pcqe
