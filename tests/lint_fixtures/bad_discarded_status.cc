// pcqe-lint-fixture-path: src/example/bad_discard.cc
// Fixture: statement-level call to a Status-returning function, result dropped.
#include "common/status.h"

namespace pcqe {

Status WriteThrough(int n);

void Flush(int n) {
  WriteThrough(n);
}

}  // namespace pcqe
