// pcqe-lint-fixture-path: src/example/good_concurrency.cc
// Fixture: the approved shapes — jthread, RAII guards, try_lock with an
// explicit result, and the hardware_concurrency() static query.
#include <mutex>
#include <shared_mutex>
#include <thread>

namespace pcqe {

std::mutex g_mu;
std::shared_mutex g_rw_mu;
int g_counter = 0;

void JoinOnScopeExit() {
  std::jthread worker([] {
    std::scoped_lock guard(g_mu);
    ++g_counter;
  });
}

int ReadCounter() {
  std::shared_lock guard(g_rw_mu);
  return g_counter;
}

bool TryBump() {
  std::unique_lock guard(g_mu, std::try_to_lock);
  if (!guard.owns_lock()) return false;
  ++g_counter;
  return true;
}

unsigned WorkerDefault() { return std::thread::hardware_concurrency(); }

}  // namespace pcqe
