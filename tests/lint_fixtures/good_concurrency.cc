// pcqe-lint-fixture-path: src/example/good_concurrency.cc
// Fixture: the approved shapes — jthread, RAII guards, try_lock with an
// explicit result, the hardware_concurrency() static query, and fan-out
// through the shared solver pool instead of std::async.
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/thread_pool.h"

namespace pcqe {

std::mutex g_mu;
std::shared_mutex g_rw_mu;
int g_counter = 0;

void JoinOnScopeExit() {
  std::jthread worker([] {
    std::scoped_lock guard(g_mu);
    ++g_counter;
  });
}

int ReadCounter() {
  std::shared_lock guard(g_rw_mu);
  return g_counter;
}

bool TryBump() {
  std::unique_lock guard(g_mu, std::try_to_lock);
  if (!guard.owns_lock()) return false;
  ++g_counter;
  return true;
}

unsigned WorkerDefault() { return std::thread::hardware_concurrency(); }

int SumViaPool(size_t n) {
  std::atomic<int> total{0};
  SolverParallelism par;  // 0 = one lane per hardware thread
  ParallelFor(par, n, [&](size_t i) { total.fetch_add(static_cast<int>(i)); });
  return total.load();
}

}  // namespace pcqe
