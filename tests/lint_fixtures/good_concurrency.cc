// pcqe-lint-fixture-path: src/example/good_concurrency.cc
// Fixture: the approved shapes — jthread, the capability-annotated
// pcqe::Mutex / pcqe::SharedMutex with RAII guards (so Clang Thread Safety
// Analysis sees every acquisition), the hardware_concurrency() static
// query, and fan-out through the shared solver pool instead of std::async.
#include <atomic>
#include <thread>

#include "common/annotations.h"
#include "common/thread_pool.h"

namespace pcqe {

Mutex g_mu;
SharedMutex g_rw_mu;
int g_counter PCQE_GUARDED_BY(g_mu) = 0;
int g_snapshot PCQE_GUARDED_BY(g_rw_mu) = 0;

void JoinOnScopeExit() {
  std::jthread worker([] {
    MutexLock guard(g_mu);
    ++g_counter;
  });
}

int ReadSnapshot() {
  ReaderLock guard(g_rw_mu);
  return g_snapshot;
}

void PublishSnapshot(int value) {
  WriterLock guard(g_rw_mu);
  g_snapshot = value;
}

unsigned WorkerDefault() { return std::thread::hardware_concurrency(); }

int SumViaPool(size_t n) {
  std::atomic<int> total{0};
  SolverParallelism par;  // 0 = one lane per hardware thread
  ParallelFor(par, n, [&](size_t i) { total.fetch_add(static_cast<int>(i)); });
  return total.load();
}

}  // namespace pcqe
