// pcqe-lint-fixture-path: src/example/bad_concurrency.cc
// Fixture: every banned threading construct — raw std::thread, detach(),
// manual lock()/unlock() pairs that leak the lock on early return, and
// std::async (whose future blocks in its destructor).
#include <future>
#include <mutex>
#include <thread>

namespace pcqe {

std::mutex g_mu;  // pcqe-lint: allow(raw-mutex)
int g_counter = 0;

void FireAndForget() {
  std::thread worker([] { ++g_counter; });
  worker.detach();
}

int ReadCounter(bool fast_path) {
  g_mu.lock();
  if (fast_path) return g_counter;  // lock leaked!
  int value = g_counter;
  g_mu.unlock();
  return value;
}

int NotActuallyParallel() {
  // Each temporary future joins before the next call launches.
  auto a = std::async(std::launch::async, [] { return g_counter; });
  std::async(std::launch::async, [] { ++g_counter; });
  return a.get();
}

}  // namespace pcqe
