// pcqe-lint-fixture-path: src/query/vec_executor.cc
// Per-row boxing inside a vectorized operator file: both the Tuple type and
// tuples() row-vector access must be flagged.

namespace pcqe {

void VecFilterChunk(const Table& table, std::vector<uint32_t>* sel) {
  for (uint32_t row : *sel) {
    Tuple boxed = table.tuples()[row];  // boxes every selected row
    (void)boxed;
  }
}

}  // namespace pcqe
