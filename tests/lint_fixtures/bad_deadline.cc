// pcqe-lint-fixture-path: src/service/deadline_check.cc
// Fixture: hand-rolled deadline comparison against steady_clock::now();
// must go through the Deadline helper (common/deadline.h).
#include <chrono>

namespace pcqe {

using Clock = std::chrono::steady_clock;

bool Expired(Clock::time_point deadline) {
  return std::chrono::steady_clock::now() > deadline;
}

}  // namespace pcqe
