// pcqe-lint-fixture-path: src/example/good_clean.cc
// Fixture: idiomatic error handling; every rule must stay quiet.
#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace pcqe {

Result<int> Forty();
Status WriteThrough(int n);

Status UseChecked() {
  Result<int> r = Forty();
  if (!r.ok()) return r.status();
  int v = r.ValueOrDie();
  PCQE_RETURN_NOT_OK(WriteThrough(v));
  PCQE_LOG(Debug) << "wrote " << v;
  Status ignored_deliberately = WriteThrough(v + 1);
  if (!ignored_deliberately.ok()) {
    PCQE_LOG(Warning) << ignored_deliberately.ToString();
  }
  return Status::OK();
}

}  // namespace pcqe
