// pcqe-lint-fixture-path: src/example/good_guard.h
#ifndef PCQE_EXAMPLE_GOOD_GUARD_H_
#define PCQE_EXAMPLE_GOOD_GUARD_H_

namespace pcqe {
struct GuardExample {};
}  // namespace pcqe

#endif  // PCQE_EXAMPLE_GOOD_GUARD_H_
