// pcqe-lint-fixture-path: src/example/bad_raw_mutex.cc
// Fixture: raw standard-library mutexes and ad-hoc guards. Each is
// functionally correct, which is exactly the problem — they compile and
// run race-free today, but Clang Thread Safety Analysis cannot see them,
// so the next refactor that touches the guarded data without the lock
// sails through the -Wthread-safety gate unnoticed.
#include <mutex>
#include <shared_mutex>

namespace pcqe {

std::mutex g_mu;
std::shared_mutex g_rw_mu;
int g_counter = 0;

void Bump() {
  std::lock_guard<std::mutex> guard(g_mu);
  ++g_counter;
}

int ReadCounter() {
  std::shared_lock guard(g_rw_mu);
  return g_counter;
}

bool TryBump() {
  std::unique_lock guard(g_mu, std::try_to_lock);
  if (!guard.owns_lock()) return false;
  ++g_counter;
  return true;
}

}  // namespace pcqe
