// Differential test layer for β pushdown (query/confidence_index.h,
// planner's kConfidencePrune insertion): evaluating with pushdown ON must be
// *release-identical* to evaluating the full intermediate result and
// post-filtering — same released values, the exact same IEEE doubles for
// every released confidence, the same materialized lineage formulas, and
// audit verdict sequences that agree (the pushed sequence is the unpushed
// one restricted to survivors; every row pushdown pruned is policy-blocked).
//
// The sweep runs ≥128 seeded random catalog × query × β instances, each
// 4-way: {row, vectorized} × {pushdown on, off}, including plan shapes the
// gate must refuse (DISTINCT, GROUP BY, LIMIT, EXCEPT — where confidence is
// not monotone in the pruned inputs). On failure the seed prints via
// SCOPED_TRACE; replay with BuildPushdownCatalog(seed, ...) + SweepQuery.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "cost/cost_function.h"
#include "engine/pcqe_engine.h"
#include "query/query_engine.h"
#include "relational/catalog.h"
#include "relational/column_chunk.h"
#include "telemetry/audit.h"

namespace pcqe {
namespace {

// orders(id, customer, amount, tag) + customers(customer, region), random
// confidences over (0.02, 0.98) so every β in the sweep splits the tables.
void BuildPushdownCatalog(uint64_t seed, size_t num_orders, Catalog* catalog) {
  Rng rng(0xBEE7A ^ seed);
  Table* orders = *catalog->CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"customer", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""},
                        {"tag", DataType::kString, ""}}));
  int64_t key_domain = static_cast<int64_t>(num_orders / 3) + 2;
  for (size_t i = 0; i < num_orders; ++i) {
    ASSERT_TRUE(orders
                    ->Insert({Value::Int(static_cast<int64_t>(i)),
                              Value::Int(rng.UniformInt(0, key_domain)),
                              Value::Double(rng.Uniform(0.0, 1000.0)),
                              Value::String(StrFormat(
                                  "tag-%d", static_cast<int>(rng.UniformInt(0, 4))))},
                             rng.Uniform(0.02, 0.98))
                    .ok());
  }
  Table* customers = *catalog->CreateTable(
      "customers", Schema({{"customer", DataType::kInt64, ""},
                           {"region", DataType::kString, ""}}));
  for (int64_t c = 0; c <= key_domain; ++c) {
    if (rng.Bernoulli(0.15)) continue;
    size_t copies = rng.Bernoulli(0.2) ? 2 : 1;
    for (size_t k = 0; k < copies; ++k) {
      ASSERT_TRUE(customers
                      ->Insert({Value::Int(c),
                                Value::String(StrFormat(
                                    "region-%d", static_cast<int>(c % 7)))},
                               rng.Uniform(0.02, 0.98))
                      .ok());
    }
  }
}

// Pushdown-safe shapes (scan / filter / project / join / sort / union-all)
// plus the shapes the gate must refuse. `IsSafeShape` mirrors the planner's
// verdict so the sweep can assert the gate, not just ride it.
std::string SweepQuery(uint64_t seed) {
  double amount = 100.0 + 60.0 * static_cast<double>(seed % 13);
  int64_t key = static_cast<int64_t>(seed % 9);
  int tag = static_cast<int>(seed % 5);
  switch (seed % 12) {
    case 0:
      return "SELECT * FROM orders";
    case 1:
      return StrFormat("SELECT id, amount FROM orders WHERE amount < %g", amount);
    case 2:
      return StrFormat(
          "SELECT * FROM orders WHERE customer = %lld AND amount > %g",
          static_cast<long long>(key), amount);
    case 3:
      return "SELECT o.id, c.region FROM orders AS o "
             "JOIN customers AS c ON o.customer = c.customer";
    case 4:
      return StrFormat(
          "SELECT o.id, c.region FROM orders AS o "
          "JOIN customers AS c ON o.customer = c.customer WHERE o.amount < %g",
          amount);
    case 5:
      return "SELECT id, amount FROM orders ORDER BY amount DESC, id";
    case 6:
      return "SELECT customer FROM orders UNION ALL SELECT customer FROM customers";
    case 7:
      return StrFormat(
          "SELECT id, amount * 2 + 1 AS v FROM orders WHERE tag = 'tag-%d'", tag);
    // Unsafe shapes: duplicate-merging set ops / EXCEPT raise confidence
    // through OR / NOT lineage; LIMIT's slot occupancy and GROUP BY's group
    // membership change with pruned inputs. The gate must refuse these.
    case 8:
      return StrFormat("SELECT DISTINCT customer FROM orders WHERE amount < %g",
                       amount);
    case 9:
      return "SELECT customer, COUNT(*) AS n FROM orders GROUP BY customer";
    case 10:
      return "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 7";
    default:
      return StrFormat(
          "SELECT customer FROM orders EXCEPT "
          "SELECT customer FROM customers WHERE customer > %lld",
          static_cast<long long>(key));
  }
}

bool IsSafeShape(uint64_t seed) { return seed % 12 < 8; }

std::unique_ptr<PcqeEngine> MakeEngine(Catalog* catalog, double beta) {
  RoleGraph roles;
  EXPECT_TRUE(roles.AddRole("analyst").ok());
  EXPECT_TRUE(roles.AddUser("ann").ok());
  EXPECT_TRUE(roles.AssignRole("ann", "analyst").ok());
  PolicyStore policies;
  EXPECT_TRUE(policies.AddPolicy(roles, {"analyst", "audit", beta}).ok());
  return std::make_unique<PcqeEngine>(catalog, std::move(roles),
                                      std::move(policies));
}

/// Everything observable about one evaluation that must be pushdown-mode
/// independent (released surface) or pushdown-explainable (blocked surface).
struct Observed {
  double beta = 0.0;
  bool pushed_down = false;
  uint64_t pruned_rows = 0;
  uint64_t pruned_chunks = 0;
  std::vector<std::vector<Value>> released_values;
  std::vector<double> released_confidences;
  std::vector<std::string> released_lineage;
  /// (confidence, lineage formula) of every blocked intermediate row.
  std::vector<std::pair<double, std::string>> blocked;
  /// Audit verdicts, in record order: (confidence, released).
  std::vector<std::pair<double, bool>> audit_verdicts;
  bool audit_pushed_down = false;
};

Observed RunOne(PcqeEngine* engine, AuditLog* audit, const std::string& sql,
                ExecutionMode mode, bool pushdown) {
  engine->execution_mode = mode;
  QueryRequest request;
  request.sql = sql;
  request.user = "ann";
  request.purpose = "audit";
  // Fraction 0: release by β alone — the precondition under which pushdown
  // is provably identical (the strategy solver never runs in either mode).
  request.required_fraction = 0.0;
  request.pushdown = pushdown;
  Result<QueryOutcome> outcome = engine->Submit(request);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  Observed obs;
  if (!outcome.ok()) return obs;
  obs.beta = outcome->policy.threshold;
  QueryResult& qr = outcome->intermediate;
  obs.pushed_down = qr.pushed_down;
  obs.pruned_rows = qr.vec_stats.pruned_rows;
  obs.pruned_chunks = qr.vec_stats.pruned_chunks;
  qr.MaterializeLineage();
  std::vector<bool> released(qr.rows.size(), false);
  for (size_t i : outcome->released) released[i] = true;
  for (size_t i = 0; i < qr.rows.size(); ++i) {
    if (released[i]) {
      obs.released_values.push_back(qr.ValuesOfRow(i));
      obs.released_confidences.push_back(qr.rows[i].confidence);
      obs.released_lineage.push_back(qr.arena->ToString(qr.rows[i].lineage));
    } else {
      obs.blocked.emplace_back(qr.rows[i].confidence,
                               qr.arena->ToString(qr.rows[i].lineage));
    }
  }
  EXPECT_NE(outcome->audit_id, 0u);
  std::optional<AuditRecord> rec = audit->Get(outcome->audit_id);
  EXPECT_TRUE(rec.has_value());
  if (rec.has_value()) {
    EXPECT_EQ(rec->rows_truncated, 0u) << "raise the audit row cap";
    obs.audit_pushed_down = rec->pushed_down;
    for (const AuditRowDecision& d : rec->rows) {
      obs.audit_verdicts.emplace_back(d.confidence, d.released);
    }
  }
  return obs;
}

// The released surface — values, confidences (exact IEEE bits), lineage
// formulas — must be identical; every row the pushed evaluation still
// blocked must appear, bit-identically, among the unpushed blocked rows.
void ExpectReleaseIdentical(const Observed& off, const Observed& on) {
  EXPECT_EQ(off.beta, on.beta);
  ASSERT_EQ(off.released_values.size(), on.released_values.size());
  for (size_t r = 0; r < off.released_values.size(); ++r) {
    SCOPED_TRACE(::testing::Message() << "released row " << r);
    ASSERT_EQ(off.released_values[r].size(), on.released_values[r].size());
    for (size_t c = 0; c < off.released_values[r].size(); ++c) {
      EXPECT_EQ(off.released_values[r][c], on.released_values[r][c]);
    }
    EXPECT_EQ(off.released_confidences[r], on.released_confidences[r]);
    EXPECT_EQ(off.released_lineage[r], on.released_lineage[r]);
  }
  // Pushed blocked rows ⊆ unpushed blocked rows (multiset, by formula).
  std::map<std::pair<double, std::string>, int> unpushed_blocked;
  for (const auto& b : off.blocked) ++unpushed_blocked[b];
  for (const auto& b : on.blocked) {
    auto it = unpushed_blocked.find(b);
    ASSERT_NE(it, unpushed_blocked.end())
        << "pushed evaluation surfaced a blocked row the reference lacks: "
        << b.second;
    if (--it->second == 0) unpushed_blocked.erase(it);
  }
  // Audit verdict sequences: released verdicts agree exactly; the pushed
  // record's blocked verdicts are a subsequence of the unpushed record's.
  std::vector<double> off_released;
  std::vector<double> on_released;
  for (const auto& [conf, rel] : off.audit_verdicts) {
    if (rel) off_released.push_back(conf);
  }
  for (const auto& [conf, rel] : on.audit_verdicts) {
    if (rel) on_released.push_back(conf);
  }
  EXPECT_EQ(off_released, on_released);
}

TEST(PlannerPushdownDifferential, SeededSweepIsReleaseIdentical) {
  constexpr uint64_t kNumInstances = 128;
  constexpr size_t kSizes[] = {0, 1, 3, 17, 100, 257, 500};
  for (uint64_t seed = 0; seed < kNumInstances; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Catalog catalog;
    BuildPushdownCatalog(seed, kSizes[seed % (sizeof(kSizes) / sizeof(kSizes[0]))],
                         &catalog);
    // β spread over (0, 1) — both near-nothing and near-everything prunes.
    double beta = 0.05 + 0.9 * static_cast<double>(seed % 19) / 19.0;
    std::unique_ptr<PcqeEngine> engine = MakeEngine(&catalog, beta);
    AuditLog audit(/*capacity=*/16, /*max_rows_per_record=*/1 << 20);
    engine->AttachAudit(&audit);
    std::string sql = SweepQuery(seed);
    SCOPED_TRACE(::testing::Message() << "query: " << sql << " beta " << beta);

    Observed row_off = RunOne(engine.get(), &audit, sql, ExecutionMode::kRow, false);
    Observed row_on = RunOne(engine.get(), &audit, sql, ExecutionMode::kRow, true);
    Observed vec_off =
        RunOne(engine.get(), &audit, sql, ExecutionMode::kVectorized, false);
    Observed vec_on =
        RunOne(engine.get(), &audit, sql, ExecutionMode::kVectorized, true);

    // Opted-out evaluations never carry a prune node.
    EXPECT_FALSE(row_off.pushed_down);
    EXPECT_FALSE(vec_off.pushed_down);
    EXPECT_FALSE(row_off.audit_pushed_down);
    // The gate: safe shapes push down; unsafe shapes must evaluate unpushed
    // even when asked.
    EXPECT_EQ(row_on.pushed_down, IsSafeShape(seed));
    EXPECT_EQ(vec_on.pushed_down, IsSafeShape(seed));
    EXPECT_EQ(row_on.audit_pushed_down, IsSafeShape(seed));

    ExpectReleaseIdentical(row_off, row_on);
    ExpectReleaseIdentical(vec_off, vec_on);
    // Cross-engine: the row interpreter is the differential reference for
    // the vectorized one in both pushdown modes.
    ExpectReleaseIdentical(row_off, vec_off);
    ExpectReleaseIdentical(row_on, vec_on);
    // Both engines prune row-exactly, so the pruned-row totals agree (the
    // vectorized engine additionally skips whole chunks).
    EXPECT_EQ(row_on.pruned_rows, vec_on.pruned_rows);
    EXPECT_EQ(row_on.pruned_chunks, 0u);
    EXPECT_EQ(row_off.pruned_rows, 0u);
    EXPECT_EQ(vec_off.pruned_rows, 0u);
  }
}

// Chunk skipping: cluster low confidences into whole chunks so the zone map
// proves them sub-β without touching a row.
TEST(PlannerPushdownDifferential, ZoneMapSkipsWholeChunks) {
  Catalog catalog;
  Table* orders = *catalog.CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""}}));
  size_t n = 3 * kColumnChunkCapacity;
  for (size_t i = 0; i < n; ++i) {
    // First chunk entirely sub-β, second entirely above, third mixed.
    double conf = i < kColumnChunkCapacity            ? 0.10
                  : i < 2 * kColumnChunkCapacity      ? 0.90
                  : (i % 2 == 0 ? 0.10 : 0.90);
    ASSERT_TRUE(orders
                    ->Insert({Value::Int(static_cast<int64_t>(i)),
                              Value::Double(static_cast<double>(i))},
                             conf)
                    .ok());
  }
  std::unique_ptr<PcqeEngine> engine = MakeEngine(&catalog, 0.5);
  AuditLog audit(16, 1 << 20);
  engine->AttachAudit(&audit);
  const std::string sql = "SELECT id FROM orders WHERE amount >= 0";

  Observed off = RunOne(engine.get(), &audit, sql, ExecutionMode::kVectorized, false);
  Observed on = RunOne(engine.get(), &audit, sql, ExecutionMode::kVectorized, true);
  ExpectReleaseIdentical(off, on);
  EXPECT_TRUE(on.pushed_down);
  // Chunk 1 skipped wholesale; chunk 3's sub-β half pruned row-exactly.
  EXPECT_EQ(on.pruned_chunks, 1u);
  EXPECT_EQ(on.pruned_rows, kColumnChunkCapacity + kColumnChunkCapacity / 2);
  EXPECT_EQ(on.released_values.size(),
            kColumnChunkCapacity + kColumnChunkCapacity / 2);

  // Row engine: same pruned-row total, no chunk skipping, identical release.
  Observed row_on = RunOne(engine.get(), &audit, sql, ExecutionMode::kRow, true);
  ExpectReleaseIdentical(off, row_on);
  EXPECT_EQ(row_on.pruned_rows, on.pruned_rows);
  EXPECT_EQ(row_on.pruned_chunks, 0u);
}

// The qualification gate, piecewise: a non-zero required fraction, a zero
// policy threshold, or the opt-out knob must each disable pushdown.
TEST(PlannerPushdownDifferential, GateRefusesNonQualifyingRequests) {
  Catalog catalog;
  BuildPushdownCatalog(7, 100, &catalog);
  std::unique_ptr<PcqeEngine> engine = MakeEngine(&catalog, 0.5);
  const std::string sql = "SELECT * FROM orders";

  QueryRequest request;
  request.sql = sql;
  request.user = "ann";
  request.purpose = "audit";
  request.required_fraction = 0.0;
  EXPECT_TRUE(engine->ResolvePushdownBeta(request).has_value());

  QueryRequest fraction = request;
  fraction.required_fraction = 0.5;
  EXPECT_FALSE(engine->ResolvePushdownBeta(fraction).has_value());

  QueryRequest opted_out = request;
  opted_out.pushdown = false;
  EXPECT_FALSE(engine->ResolvePushdownBeta(opted_out).has_value());

  // No matching policy resolves to threshold 0 — nothing would prune, so
  // the engine evaluates unpushed (bit-identical, cache-shareable).
  QueryRequest no_policy = request;
  no_policy.purpose = "unregulated";
  EXPECT_FALSE(engine->ResolvePushdownBeta(no_policy).has_value());

  QueryRequest unsafe = request;
  unsafe.sql = "SELECT DISTINCT customer FROM orders";
  EXPECT_FALSE(engine->ResolvePushdownBeta(unsafe).has_value());

  QueryRequest malformed = request;
  malformed.sql = "SELECT FROM WHERE";
  EXPECT_FALSE(engine->ResolvePushdownBeta(malformed).has_value());
}

// Index maintenance: an accepted improvement bumps the confidence version,
// which must invalidate the zone map — the re-run must release the newly
// cleared rows (a stale map skipping their chunk would block them).
TEST(PlannerPushdownDifferential, AcceptedImprovementInvalidatesIndex) {
  Catalog catalog;
  Table* orders = *catalog.CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""}}));
  std::vector<BaseTupleId> ids;
  for (size_t i = 0; i < 10; ++i) {
    ids.push_back(*orders->Insert({Value::Int(static_cast<int64_t>(i))}, 0.2,
                                  *MakeLinearCost(10.0)));
  }
  std::unique_ptr<PcqeEngine> engine = MakeEngine(&catalog, 0.5);
  QueryRequest request;
  request.sql = "SELECT id FROM orders";
  request.user = "ann";
  request.purpose = "audit";
  request.required_fraction = 0.0;

  QueryOutcome before = *engine->Submit(request);
  EXPECT_TRUE(before.intermediate.pushed_down);
  EXPECT_EQ(before.released.size(), 0u);
  EXPECT_EQ(before.intermediate.rows.size(), 0u);  // everything pruned

  // Raise every tuple above β through the engine's own accept path.
  StrategyProposal proposal;
  proposal.needed = true;
  proposal.feasible = true;
  for (BaseTupleId id : ids) proposal.actions.push_back({id, 0.2, 0.9, 7.0});
  ASSERT_TRUE(engine->AcceptProposal(proposal).ok());

  QueryOutcome after = *engine->Submit(request);
  EXPECT_TRUE(after.intermediate.pushed_down);
  EXPECT_EQ(after.released.size(), ids.size());
  EXPECT_EQ(after.intermediate.vec_stats.pruned_rows, 0u);
}

// Unlogged growth: Insert does not bump the confidence version, so the zone
// map's row-count validation must catch it and rebuild.
TEST(PlannerPushdownDifferential, InsertInvalidatesIndexByRowCount) {
  Catalog catalog;
  Table* orders = *catalog.CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""}}));
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(orders->Insert({Value::Int(static_cast<int64_t>(i))}, 0.9).ok());
  }
  std::unique_ptr<PcqeEngine> engine = MakeEngine(&catalog, 0.5);
  QueryRequest request;
  request.sql = "SELECT id FROM orders";
  request.user = "ann";
  request.purpose = "audit";
  request.required_fraction = 0.0;
  EXPECT_EQ((*engine->Submit(request)).released.size(), 5u);

  // Same version, more rows — two above β, one below.
  ASSERT_TRUE(orders->Insert({Value::Int(100)}, 0.8).ok());
  ASSERT_TRUE(orders->Insert({Value::Int(101)}, 0.1).ok());
  ASSERT_TRUE(orders->Insert({Value::Int(102)}, 0.7).ok());
  QueryOutcome after = *engine->Submit(request);
  EXPECT_EQ(after.released.size(), 7u);
  EXPECT_EQ(after.intermediate.vec_stats.pruned_rows, 1u);
}

}  // namespace
}  // namespace pcqe
