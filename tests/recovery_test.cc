// Crash-point recovery harness for the durable catalog. Each test arms one
// of the storage.* fault sites, drives a transaction into the failure,
// "crashes" by dropping all in-memory state (fresh Catalog + fresh
// StorageManager over the same directory), recovers, and asserts the
// rebuilt catalog is bit-identical — confidences via EXPECT_EQ on doubles,
// plus the exact `confidence_version` — to the pre-crash *committed* state.
// The accepted-before-crash / in-flight-at-crash boundary is the core
// claim: everything acknowledged survives, nothing half-done leaks.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "cost/cost_function.h"
#include "engine/pcqe_engine.h"
#include "policy/confidence_policy.h"
#include "policy/rbac.h"
#include "relational/catalog.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace pcqe {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One in-memory incarnation of the system: catalog + engine + storage over
/// a shared directory. Constructing a second incarnation on the same
/// directory *is* the crash — nothing in memory carries over.
struct Incarnation {
  explicit Incarnation(const std::string& dir) {
    Table* table =
        *catalog.CreateTable("t", Schema({{"x", DataType::kDouble, ""}}));
    ids.push_back(*table->Insert({Value::Double(1.0)}, 0.2));
    ids.push_back(*table->Insert({Value::Double(2.0)}, 0.4));
    ids.push_back(*table->Insert({Value::Double(3.0)}, 0.5,
                                 *MakeLinearCost(10.0), 0.9));
    engine = std::make_unique<PcqeEngine>(&catalog, RoleGraph(), PolicyStore());
    open_status = storage.Open({.dir = dir}, &catalog);
    if (open_status.ok()) engine->AttachStorage(&storage);
  }

  /// Accepts a single-tuple increment through the engine (the logged path).
  Status Accept(BaseTupleId id, double to) {
    StrategyProposal proposal;
    proposal.needed = true;
    proposal.feasible = true;
    proposal.actions = {{id, 0.0, to, 0.0}};
    return engine->AcceptProposal(proposal);
  }

  std::vector<double> Confidences() const {
    std::vector<double> out;
    for (BaseTupleId id : ids) out.push_back((*catalog.FindTuple(id))->confidence());
    return out;
  }

  Catalog catalog;
  std::vector<BaseTupleId> ids;
  std::unique_ptr<PcqeEngine> engine;
  StorageManager storage;
  Status open_status = Status::OK();
};

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(RecoveryTest, RecoversCommittedAcceptsBitIdentically) {
  std::string dir = FreshDir("rec_basic");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok()) << live.open_status.ToString();
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    ASSERT_TRUE(live.Accept(live.ids[1], 0.61).ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.77).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
    ASSERT_EQ(version, 3u);
  }  // crash: every in-memory structure is destroyed

  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok()) << revived.open_status.ToString();
  EXPECT_EQ(revived.Confidences(), committed);  // bit-identical doubles
  EXPECT_EQ(revived.catalog.confidence_version(), version);
  StorageSnapshot snap = revived.storage.snapshot();
  EXPECT_EQ(snap.recovered_records, 4u);  // version record + 3 commits
  EXPECT_EQ(snap.recovered_version, version);
}

TEST_F(RecoveryTest, MultiActionAcceptReplaysAtomically) {
  std::string dir = FreshDir("rec_multi");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    StrategyProposal proposal;
    proposal.needed = true;
    proposal.actions = {{live.ids[0], 0.0, 0.5, 0.0},
                        {live.ids[1], 0.0, 0.8, 0.0},
                        {live.ids[2], 0.0, 0.9, 0.0}};
    ASSERT_TRUE(live.engine->AcceptProposal(proposal).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
    ASSERT_EQ(version, 3u);  // one commit record, three version bumps
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
  EXPECT_EQ(revived.storage.snapshot().recovered_records, 2u);
}

TEST_F(RecoveryTest, AppendFaultRollsBackAndCommittedStateSurvives) {
  std::string dir = FreshDir("rec_append_fault");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();

    // In-flight accept dies at the append boundary: no catalog mutation,
    // no version bump — the transaction never happened.
    FaultInjector::Global().Arm(fault_sites::kWalAppend, {});
    Status failed = live.Accept(live.ids[1], 0.9);
    ASSERT_TRUE(failed.IsInternal()) << failed.ToString();
    EXPECT_NE(failed.message().find("rolled back"), std::string::npos);
    EXPECT_EQ(live.Confidences(), committed);
    EXPECT_EQ(live.catalog.confidence_version(), version);
  }  // crash with the fault still armed

  FaultInjector::Global().DisarmAll();
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
}

TEST_F(RecoveryTest, SyncFaultRollsBackAndCommittedStateSurvives) {
  std::string dir = FreshDir("rec_sync_fault");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();

    FaultInjector::Global().Arm(fault_sites::kWalSync, {});
    ASSERT_FALSE(live.Accept(live.ids[1], 0.9).ok());
    EXPECT_EQ(live.Confidences(), committed);
    EXPECT_EQ(live.catalog.confidence_version(), version);
    FaultInjector::Global().Disarm(fault_sites::kWalSync);

    // The same transaction retried after the fault clears goes through —
    // the rollback left the WAL consistent.
    ASSERT_TRUE(live.Accept(live.ids[1], 0.9).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
}

TEST_F(RecoveryTest, CheckpointFaultLeavesPreviousStateAuthoritative) {
  std::string dir = FreshDir("rec_ckpt_fault");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    StorageSnapshot before = live.storage.snapshot();

    FaultInjector::Global().Arm(fault_sites::kCheckpoint, {});
    ASSERT_FALSE(live.storage.Checkpoint(live.catalog).ok());
    FaultInjector::Global().Disarm(fault_sites::kCheckpoint);
    // The old checkpoint + segment stay published and the writer keeps
    // logging into the old segment.
    StorageSnapshot after = live.storage.snapshot();
    EXPECT_EQ(after.checkpoint, before.checkpoint);
    EXPECT_EQ(after.wal, before.wal);
    ASSERT_TRUE(live.Accept(live.ids[1], 0.9).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
}

TEST_F(RecoveryTest, ManifestFaultAbortsCheckpointBeforePublish) {
  std::string dir = FreshDir("rec_manifest_fault");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    StorageSnapshot before = live.storage.snapshot();

    // The fault fires at the publish step: snapshot and fresh segment are
    // already on disk, but the manifest — the commit point — is untouched.
    FaultInjector::Global().Arm(fault_sites::kManifest, {});
    ASSERT_FALSE(live.storage.Checkpoint(live.catalog).ok());
    FaultInjector::Global().Disarm(fault_sites::kManifest);
    EXPECT_EQ(live.storage.snapshot().checkpoint, before.checkpoint);
    ASSERT_TRUE(live.Accept(live.ids[1], 0.9).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
}

TEST_F(RecoveryTest, SuccessfulCheckpointSurvivesCrashWithLaterCommits) {
  std::string dir = FreshDir("rec_ckpt_then_commits");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    ASSERT_TRUE(live.storage.Checkpoint(live.catalog).ok());
    // Commits after the checkpoint live only in the new segment.
    ASSERT_TRUE(live.Accept(live.ids[1], 0.9).ok());
    ASSERT_TRUE(live.Accept(live.ids[2], 0.85).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
  // Only the post-checkpoint records replay.
  EXPECT_EQ(revived.storage.snapshot().recovered_records, 3u);
}

TEST_F(RecoveryTest, ReplayFaultFailsRecoveryCleanlyThenSucceeds) {
  std::string dir = FreshDir("rec_replay_fault");
  std::vector<double> committed;
  uint64_t version = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
  }

  FaultInjector::Global().Arm(fault_sites::kRecoveryReplay, {});
  {
    Incarnation crashed_twice(dir);
    EXPECT_TRUE(crashed_twice.open_status.IsInternal())
        << crashed_twice.open_status.ToString();
    EXPECT_FALSE(crashed_twice.storage.open());
    // A failed recovery refuses logging until it succeeds.
    EXPECT_TRUE(
        crashed_twice.storage.LogAccept(0, {{crashed_twice.ids[0], 0, 0.9, 0}})
            .IsInternal());
    // Recovery is idempotent: disarm and re-run on the same manager.
    FaultInjector::Global().Disarm(fault_sites::kRecoveryReplay);
    ASSERT_TRUE(crashed_twice.storage.Recover().ok());
    EXPECT_TRUE(crashed_twice.storage.open());
    EXPECT_EQ(crashed_twice.Confidences(), committed);
    EXPECT_EQ(crashed_twice.catalog.confidence_version(), version);
  }
}

TEST_F(RecoveryTest, TornFinalRecordLosesOnlyTheUnsyncedTail) {
  std::string dir = FreshDir("rec_torn_tail");
  std::vector<double> after_first;
  uint64_t version_after_first = 0;
  std::string wal_path;
  uint64_t valid_before_last = 0;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    after_first = live.Confidences();
    version_after_first = live.catalog.confidence_version();
    wal_path = dir + "/" + live.storage.snapshot().wal;
    valid_before_last = live.storage.snapshot().wal_file_bytes;
    ASSERT_TRUE(live.Accept(live.ids[1], 0.9).ok());
  }

  // The crash tears the last commit record in half mid-write.
  uint64_t full = std::filesystem::file_size(wal_path);
  ASSERT_GT(full, valid_before_last);
  std::filesystem::resize_file(wal_path, valid_before_last + (full - valid_before_last) / 2);

  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok()) << revived.open_status.ToString();
  // The second accept was in flight at the crash: recovery lands exactly on
  // the first committed state and the torn bytes are discarded.
  EXPECT_EQ(revived.Confidences(), after_first);
  EXPECT_EQ(revived.catalog.confidence_version(), version_after_first);

  // New accepts after the torn-tail truncation append cleanly.
  ASSERT_TRUE(revived.Accept(revived.ids[1], 0.9).ok());
  auto read = ReadWal(dir + "/" + revived.storage.snapshot().wal);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(RecoveryTest, GarbageAppendedToSegmentIsSkipped) {
  std::string dir = FreshDir("rec_garbage_tail");
  std::vector<double> committed;
  uint64_t version = 0;
  std::string wal_path;
  {
    Incarnation live(dir);
    ASSERT_TRUE(live.open_status.ok());
    ASSERT_TRUE(live.Accept(live.ids[0], 0.55).ok());
    committed = live.Confidences();
    version = live.catalog.confidence_version();
    wal_path = dir + "/" + live.storage.snapshot().wal;
  }
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "\xff\xff\xff\xff garbage from a crashed writer";
  }
  Incarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok());
  EXPECT_EQ(revived.Confidences(), committed);
  EXPECT_EQ(revived.catalog.confidence_version(), version);
}

/// `Incarnation` variant with a role and a policy (<R, general, 0.5>) so
/// pushdown queries resolve a β, plus four all-below-β base tuples.
struct PushdownIncarnation {
  explicit PushdownIncarnation(const std::string& dir) {
    Table* table =
        *catalog.CreateTable("t", Schema({{"x", DataType::kDouble, ""}}));
    for (int i = 0; i < 4; ++i) {
      ids.push_back(*table->Insert({Value::Double(static_cast<double>(i))}, 0.2,
                                   *MakeLinearCost(10.0)));
    }
    RoleGraph roles;
    PCQE_CHECK(roles.AddRole("R").ok());
    PCQE_CHECK(roles.AddUser("u").ok());
    PCQE_CHECK(roles.AssignRole("u", "R").ok());
    PolicyStore policies;
    PCQE_CHECK(policies.AddPolicy(roles, {"R", "general", 0.5}).ok());
    engine = std::make_unique<PcqeEngine>(&catalog, std::move(roles),
                                          std::move(policies));
    open_status = storage.Open({.dir = dir}, &catalog);
    if (open_status.ok()) engine->AttachStorage(&storage);
  }

  Status Accept(BaseTupleId id, double to) {
    StrategyProposal proposal;
    proposal.needed = true;
    proposal.feasible = true;
    proposal.actions = {{id, 0.0, to, 0.0}};
    return engine->AcceptProposal(proposal);
  }

  Result<QueryOutcome> Query(bool pushdown) {
    QueryRequest request{"SELECT x FROM t", "u", "general", 0.0};
    request.pushdown = pushdown;
    return engine->Submit(request);
  }

  Catalog catalog;
  std::vector<BaseTupleId> ids;
  std::unique_ptr<PcqeEngine> engine;
  StorageManager storage;
  Status open_status = Status::OK();
};

TEST_F(RecoveryTest, PushdownAfterCrashPrunesPerRecoveredConfidences) {
  std::string dir = FreshDir("rec_pushdown");
  {
    PushdownIncarnation live(dir);
    ASSERT_TRUE(live.open_status.ok()) << live.open_status.ToString();
    // Everything starts below β = 0.5: the pushed query prunes all 4 rows.
    Result<QueryOutcome> before = live.Query(true);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    EXPECT_TRUE(before->intermediate.pushed_down);
    EXPECT_TRUE(before->released.empty());
    EXPECT_EQ(before->intermediate.vec_stats.pruned_rows, 4u);
    // Two logged accepts lift ids[1] and ids[3] above β.
    ASSERT_TRUE(live.Accept(live.ids[1], 0.8).ok());
    ASSERT_TRUE(live.Accept(live.ids[3], 0.7).ok());
  }  // crash

  PushdownIncarnation revived(dir);
  ASSERT_TRUE(revived.open_status.ok()) << revived.open_status.ToString();
  // The revived engine's (empty) index rebuilds over the replayed state:
  // exactly the accepted rows clear β, and the pushed run stays
  // release-identical to the unpushed reference.
  Result<QueryOutcome> pushed = revived.Query(true);
  Result<QueryOutcome> unpushed = revived.Query(false);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  ASSERT_TRUE(unpushed.ok()) << unpushed.status().ToString();
  EXPECT_TRUE(pushed->intermediate.pushed_down);
  EXPECT_FALSE(unpushed->intermediate.pushed_down);
  ASSERT_EQ(pushed->released.size(), 2u);
  ASSERT_EQ(unpushed->released.size(), 2u);
  for (size_t i = 0; i < pushed->released.size(); ++i) {
    EXPECT_EQ(pushed->intermediate.rows[pushed->released[i]].confidence,
              unpushed->intermediate.rows[unpushed->released[i]].confidence);
  }
  EXPECT_EQ(pushed->intermediate.vec_stats.pruned_rows, 2u);
}

TEST_F(RecoveryTest, IndexRebuildFaultDegradesToRowExactPruning) {
  std::string dir = FreshDir("rec_index_fault");
  PushdownIncarnation live(dir);
  ASSERT_TRUE(live.open_status.ok()) << live.open_status.ToString();
  ASSERT_TRUE(live.Accept(live.ids[0], 0.8).ok());

  // Every rebuild attempt fails: no zone map is ever published, the prune
  // node falls back to row-exact tests — same released set, no chunk
  // skipping — and the query itself still succeeds.
  FaultInjector::Global().Arm(fault_sites::kIndexRebuild, {});
  Result<QueryOutcome> degraded = live.Query(true);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->intermediate.pushed_down);
  ASSERT_EQ(degraded->released.size(), 1u);
  EXPECT_EQ(degraded->intermediate.vec_stats.pruned_chunks, 0u);
  EXPECT_EQ(degraded->intermediate.vec_stats.pruned_rows, 3u);
  EXPECT_GT(FaultInjector::Global().hits(fault_sites::kIndexRebuild), 0u);

  // Disarm: the rebuild succeeds on the next query and the released set is
  // unchanged.
  FaultInjector::Global().Disarm(fault_sites::kIndexRebuild);
  Result<QueryOutcome> healed = live.Query(true);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  ASSERT_EQ(healed->released.size(), 1u);
  EXPECT_EQ(healed->intermediate.rows[healed->released[0]].confidence,
            degraded->intermediate.rows[degraded->released[0]].confidence);
  EXPECT_EQ(healed->intermediate.vec_stats.pruned_rows, 3u);
}

TEST_F(RecoveryTest, ValidationFailureSkipsLoggingEntirely) {
  // An accept that fails validation (target above the tuple's ceiling) must
  // not reach the WAL at all: the log stays free of aborted garbage.
  std::string dir = FreshDir("rec_validation");
  Incarnation live(dir);
  ASSERT_TRUE(live.open_status.ok());
  StorageSnapshot before = live.storage.snapshot();
  ASSERT_FALSE(live.Accept(live.ids[2], 0.95).ok());  // ceiling is 0.9
  StorageSnapshot after = live.storage.snapshot();
  EXPECT_EQ(after.wal_appends, before.wal_appends);
  EXPECT_EQ(after.wal_file_bytes, before.wal_file_bytes);
  EXPECT_EQ(live.catalog.confidence_version(), 0u);
}

}  // namespace
}  // namespace pcqe
