// Tests for operator-level query profiling (EXPLAIN ANALYZE): the
// OperatorProfiler collection protocol, differential row-vs-vectorized
// operator trees, the engine's profile flag and per-kind operator
// histograms, and the text/JSON renderings.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/pcqe_engine.h"
#include "query/query_engine.h"
#include "telemetry/profile.h"

namespace pcqe {
namespace {

/// orders(id, customer, amount) x customers(customer, region): enough shape
/// for a scan -> filter -> join plan in both engines.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* orders = *catalog_.CreateTable(
        "orders", Schema({{"id", DataType::kInt64, ""},
                          {"customer", DataType::kInt64, ""},
                          {"amount", DataType::kDouble, ""}}));
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(orders
                      ->Insert({Value::Int(i), Value::Int(i % 4),
                                Value::Double(static_cast<double>(i) * 25.0)},
                               0.5 + 0.01 * static_cast<double>(i % 40))
                      .ok());
    }
    Table* customers = *catalog_.CreateTable(
        "customers", Schema({{"customer", DataType::kInt64, ""},
                             {"region", DataType::kString, ""}}));
    for (int64_t c = 0; c < 4; ++c) {
      ASSERT_TRUE(customers
                      ->Insert({Value::Int(c),
                                Value::String("region-" + std::to_string(c))},
                               0.9)
                      .ok());
    }
  }

  Result<QueryResult> RunProfiled(ExecutionMode mode, OperatorProfile* profile) {
    return RunQuery(catalog_, kSql, nullptr, mode, /*materialize_values=*/false,
                    profile);
  }

  static constexpr const char* kSql =
      "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
      "ON o.customer = c.customer WHERE o.amount < 500.0";

  Catalog catalog_;
};

TEST_F(ProfileTest, RowAndVectorizedProfilesAgreeOperatorByOperator) {
  OperatorProfile row_profile;
  OperatorProfile vec_profile;
  Result<QueryResult> row = RunProfiled(ExecutionMode::kRow, &row_profile);
  Result<QueryResult> vec = RunProfiled(ExecutionMode::kVectorized, &vec_profile);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_EQ(row_profile.mode, "row");
  EXPECT_EQ(vec_profile.mode, "vectorized");

  // Same plan, same tree: labels, parent links and per-operator row counts
  // must be identical across engines (the row engine is the reference).
  ASSERT_EQ(row_profile.nodes.size(), vec_profile.nodes.size());
  ASSERT_GE(row_profile.nodes.size(), 3u);  // at least scan, filter/scan, join
  for (size_t i = 0; i < row_profile.nodes.size(); ++i) {
    const OperatorProfile::Node& r = row_profile.nodes[i];
    const OperatorProfile::Node& v = vec_profile.nodes[i];
    EXPECT_EQ(r.label, v.label) << "node " << i;
    EXPECT_EQ(r.parent, v.parent) << "node " << i;
    EXPECT_EQ(r.rows_out, v.rows_out) << "node " << i;
    EXPECT_EQ(r.rows_in, v.rows_in) << "node " << i;
    // The row engine never touches column chunks.
    EXPECT_EQ(r.chunks, 0u) << "node " << i;
  }
  // Root reports the query's result cardinality.
  EXPECT_EQ(row_profile.nodes[0].rows_out, row->rows.size());
  EXPECT_EQ(vec_profile.nodes[0].rows_out, vec->rows.size());
  // The vectorized scans actually scanned chunks.
  uint64_t vec_chunks = 0;
  for (const OperatorProfile::Node& n : vec_profile.nodes) vec_chunks += n.chunks;
  EXPECT_GT(vec_chunks, 0u);
}

TEST_F(ProfileTest, RowsInSumsDirectChildren) {
  OperatorProfile profile;
  ASSERT_TRUE(RunProfiled(ExecutionMode::kVectorized, &profile).ok());
  for (size_t i = 0; i < profile.nodes.size(); ++i) {
    uint64_t child_rows = 0;
    bool has_children = false;
    for (const OperatorProfile::Node& n : profile.nodes) {
      if (n.parent == static_cast<int32_t>(i)) {
        has_children = true;
        child_rows += n.rows_out;
      }
    }
    if (has_children) {
      EXPECT_EQ(profile.nodes[i].rows_in, child_rows) << "node " << i;
    } else {
      EXPECT_EQ(profile.nodes[i].rows_in, profile.nodes[i].rows_out)
          << "leaf " << i;
    }
  }
}

TEST_F(ProfileTest, NullProfilerIsInert) {
  OperatorProfiler profiler(nullptr);
  EXPECT_FALSE(profiler.enabled());
  size_t node = profiler.Begin("Scan t");
  OperatorProfiler::Extra extra;
  extra.chunks = 3;
  profiler.End(node, 42, extra);  // must not crash or record anywhere
  Result<QueryResult> result = RunProfiled(ExecutionMode::kVectorized, nullptr);
  ASSERT_TRUE(result.ok());
}

TEST_F(ProfileTest, RenderTextAndJsonCarryTheTree) {
  OperatorProfile profile;
  ASSERT_TRUE(RunProfiled(ExecutionMode::kVectorized, &profile).ok());
  std::string text = profile.RenderText();
  EXPECT_NE(text.find("explain analyze [vectorized]"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan orders"), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("time="), std::string::npos);

  std::string json = profile.RenderJson();
  EXPECT_NE(json.find("\"mode\":\"vectorized\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"operators\":["), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\""), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

/// Extracts the numeric value of one exposition sample line.
double SampleValue(const std::string& text, const std::string& name) {
  size_t pos = text.find("\n" + name + " ");
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + 1 + name.size() + 1, nullptr);
}

TEST_F(ProfileTest, EngineProfileFlagFeedsOutcomeAndHistograms) {
  RoleGraph roles;
  ASSERT_TRUE(roles.AddRole("R").ok());
  ASSERT_TRUE(roles.AddUser("u").ok());
  ASSERT_TRUE(roles.AssignRole("u", "R").ok());
  PolicyStore policies;
  ASSERT_TRUE(policies.AddPolicy(roles, {"R", "general", 0.4}).ok());
  PcqeEngine engine(&catalog_, std::move(roles), std::move(policies));
  TelemetryRegistry registry;
  Tracer tracer(4);
  engine.AttachTelemetry(&registry, &tracer);

  // Pushdown off: fraction 0 would otherwise qualify, and the vectorized
  // prune operator fuses the scan it wraps (no separate Scan node).
  QueryRequest off{kSql, "u", "general", 0.0};
  off.pushdown = false;
  Result<QueryOutcome> plain = engine.Submit(off);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->profile, nullptr);
  EXPECT_EQ(SampleValue(registry.RenderText(),
                        "pcqe_query_operator_seconds_scan_count"),
            0.0);

  QueryRequest on{kSql, "u", "general", 0.0};
  on.profile = true;
  on.pushdown = false;
  Result<QueryOutcome> profiled = engine.Submit(on);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  ASSERT_NE(profiled->profile, nullptr);
  EXPECT_FALSE(profiled->profile->nodes.empty());
  EXPECT_EQ(profiled->profile->nodes[0].rows_out,
            profiled->intermediate.rows.size());
  // Each profiled operator fed its per-kind wall-time histogram.
  std::string text = registry.RenderText();
  EXPECT_GT(SampleValue(text, "pcqe_query_operator_seconds_scan_count"), 0.0);
  EXPECT_GT(SampleValue(text, "pcqe_query_operator_seconds_join_count"), 0.0);

  // With pushdown on, the profiled prune operator feeds its own histogram.
  QueryRequest pushed{kSql, "u", "general", 0.0};
  pushed.profile = true;
  Result<QueryOutcome> pushed_profiled = engine.Submit(pushed);
  ASSERT_TRUE(pushed_profiled.ok()) << pushed_profiled.status().ToString();
  EXPECT_TRUE(pushed_profiled->intermediate.pushed_down);
  EXPECT_GT(SampleValue(registry.RenderText(),
                        "pcqe_query_operator_seconds_confidenceprune_count"),
            0.0);
}

}  // namespace
}  // namespace pcqe
