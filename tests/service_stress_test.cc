// Multi-threaded stress test for the service layer, designed to run under
// ThreadSanitizer (scripts/analyze.sh builds it with -DPCQE_SANITIZE=thread):
// many concurrent sessions hammer overlapping queries while a writer thread
// interleaves AcceptProposal increments, exercising the reader-writer
// catalog lock, the version-keyed cache and the counters simultaneously.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.h"

namespace pcqe {
namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

class ServiceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* proposal = *catalog_.CreateTable(
        "Proposal", Schema({{"company", DataType::kString, ""},
                            {"proposal", DataType::kString, ""},
                            {"funding", DataType::kDouble, ""}}));
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("AlphaTech"), Value::String("expansion"),
                              Value::Double(2e6)},
                             0.5)
                    .ok());
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("BlueSky"), Value::String("marketing"),
                              Value::Double(8e5)},
                             0.3, *MakeLinearCost(1000.0))
                    .ok());
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("BlueSky"), Value::String("research"),
                              Value::Double(5e5)},
                             0.4, *MakeLinearCost(100.0))
                    .ok());
    Table* info = *catalog_.CreateTable(
        "CompanyInfo",
        Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
    ASSERT_TRUE(
        info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8).ok());
    ASSERT_TRUE(info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                             *MakeLinearCost(10000.0))
                    .ok());

    RoleGraph roles;
    ASSERT_TRUE(roles.AddRole("Secretary").ok());
    ASSERT_TRUE(roles.AddRole("Manager").ok());
    PolicyStore policies;
    ASSERT_TRUE(policies.AddPolicy(roles, {"Secretary", "analysis", 0.05}).ok());
    ASSERT_TRUE(policies.AddPolicy(roles, {"Manager", "investment", 0.06}).ok());
    // Ten subjects so the test exceeds the eight-concurrent-session bar.
    for (int u = 0; u < 10; ++u) {
      std::string user = "user" + std::to_string(u);
      ASSERT_TRUE(roles.AddUser(user).ok());
      ASSERT_TRUE(
          roles.AssignRole(user, u % 2 == 0 ? "Secretary" : "Manager").ok());
    }
    engine_ = std::make_unique<PcqeEngine>(&catalog_, std::move(roles),
                                           std::move(policies));
  }

  Catalog catalog_;
  std::unique_ptr<PcqeEngine> engine_;
};

TEST_F(ServiceStressTest, ConcurrentSessionsWithInterleavedWrites) {
  QueryService service(engine_.get(),
                       {.num_workers = 4, .queue_capacity = 256, .cache_capacity = 32});

  // Open ten sessions (five Secretaries under β=0.05, five Managers under
  // β=0.06) before the traffic starts.
  std::vector<SessionHandle> sessions;
  for (int u = 0; u < 10; ++u) {
    std::string user = "user" + std::to_string(u);
    sessions.push_back(*service.OpenSession(
        user, u % 2 == 0 ? "analysis" : "investment"));
  }
  ASSERT_EQ(service.stats().active_sessions, 10u);

  const std::vector<std::string> query_mix = {
      kCandidateQuery,
      "SELECT company FROM proposal WHERE funding < 1000000",
      "SELECT company, income FROM companyinfo",
      "SELECT funding FROM proposal WHERE funding > 100000",
  };

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> overload_count{0};
  std::atomic<uint64_t> accepted_writes{0};

  {
    // Client threads: each drives one session with a rotating query mix.
    std::vector<std::jthread> clients;
    clients.reserve(sessions.size() + 2);
    for (size_t s = 0; s < sessions.size(); ++s) {
      clients.emplace_back([&, s] {
        const SessionHandle& session = sessions[s];
        for (int i = 0; i < 40; ++i) {
          ServiceRequest request;
          request.sql = query_mix[(s + static_cast<size_t>(i)) % query_mix.size()];
          request.required_fraction = 0.0;  // read path only on this thread
          Result<QueryOutcome> outcome = service.Submit(session, request);
          if (outcome.ok()) {
            ok_count.fetch_add(1, std::memory_order_relaxed);
          } else if (outcome.status().IsResourceExhausted()) {
            overload_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << outcome.status().ToString();
          }
        }
      });
    }

    // Audit reader thread: snapshots and renders the compliance ring while
    // workers append to it — TSan exercises the Record/Snapshot lock pair.
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        std::vector<AuditRecord> records = service.audit()->Snapshot();
        for (const AuditRecord& r : records) {
          if (r.id == 0) ADD_FAILURE() << "audit record without an id";
        }
        std::string json = service.audit()->RenderJson();
        if (json.empty()) ADD_FAILURE() << "empty audit export";
        std::this_thread::yield();
      }
    });

    // Writer thread: keeps demanding full release and accepting whatever
    // proposal comes back, interleaving catalog writes with the readers.
    clients.emplace_back([&] {
      SessionHandle writer = *service.OpenSession("user1", "investment");
      for (int i = 0; i < 10; ++i) {
        Result<QueryOutcome> outcome = service.Submit(
            writer, {.sql = kCandidateQuery, .required_fraction = 1.0});
        if (!outcome.ok()) {  // overload is fine here
          overload_count.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ok_count.fetch_add(1, std::memory_order_relaxed);
        if (!outcome->proposal.needed) break;  // confidence already improved
        // A concurrent Accept may have raced this proposal stale; both
        // outcomes (applied or rejected as no-longer-an-increase) are legal.
        if (service.Accept(outcome->proposal).ok()) {
          accepted_writes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }  // jthreads join

  // The writer must have pushed at least one increment through, and the
  // improved confidence must now release the candidate row to Managers.
  EXPECT_GE(accepted_writes.load(), 1u);
  EXPECT_GT(catalog_.confidence_version(), 0u);
  QueryOutcome final_outcome = *service.Submit(
      sessions[1], {.sql = kCandidateQuery, .required_fraction = 1.0});
  EXPECT_EQ(final_outcome.released.size(), 1u);

  // Counter reconciliation once the system is idle.
  ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.submitted,
            stats.served + stats.failed + stats.expired + stats.shutdown_dropped);
  EXPECT_EQ(stats.served, ok_count.load() + 1 /* final_outcome */);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, overload_count.load());
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);

  uint64_t histogram_total = 0;
  for (uint64_t bucket : stats.latency_buckets) histogram_total += bucket;
  EXPECT_EQ(histogram_total, stats.served + stats.failed);

  // Every served decision appended an audit record (plus one per Accept
  // attempt), so the ring's lifetime count is at least the served count.
  EXPECT_GE(service.audit()->total_recorded(), stats.served);

  service.Shutdown();
}

TEST_F(ServiceStressTest, ParallelSubmitAsyncFloodRespectsAdmission) {
  QueryService service(engine_.get(),
                       {.num_workers = 2, .queue_capacity = 8, .cache_capacity = 16});
  SessionHandle session = *service.OpenSession("user0", "analysis");

  // Several producers flood a tiny queue; every future must resolve and
  // every submission must be either served or cleanly rejected.
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> resolved{0};
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        std::vector<std::future<Result<QueryOutcome>>> futures;
        for (int i = 0; i < 50; ++i) {
          auto future = service.SubmitAsync(
              session, {.sql = "SELECT company FROM proposal"});
          if (future.ok()) {
            futures.push_back(std::move(*future));
          } else {
            ASSERT_TRUE(future.status().IsResourceExhausted());
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (auto& future : futures) {
          ASSERT_TRUE(future.get().ok());
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(resolved.load() + rejected.load(), 200u);
  EXPECT_EQ(stats.submitted, resolved.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.served, resolved.load());
}

}  // namespace
}  // namespace pcqe
