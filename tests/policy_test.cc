// Unit tests for RBAC and confidence policies.

#include <gtest/gtest.h>

#include "policy/confidence_policy.h"
#include "policy/policy_io.h"
#include "policy/rbac.h"

namespace pcqe {
namespace {

RoleGraph VentureCapitalRoles() {
  RoleGraph g;
  EXPECT_TRUE(g.AddRole("Secretary").ok());
  EXPECT_TRUE(g.AddRole("Manager").ok());
  EXPECT_TRUE(g.AddUser("sam").ok());
  EXPECT_TRUE(g.AddUser("mary").ok());
  EXPECT_TRUE(g.AssignRole("sam", "Secretary").ok());
  EXPECT_TRUE(g.AssignRole("mary", "Manager").ok());
  return g;
}

TEST(RoleGraphTest, AddAndLookup) {
  RoleGraph g;
  EXPECT_TRUE(g.AddRole("A").ok());
  EXPECT_TRUE(g.AddRole("A").IsAlreadyExists());
  EXPECT_TRUE(g.AddRole("").IsInvalidArgument());
  EXPECT_TRUE(g.HasRole("A"));
  EXPECT_FALSE(g.HasRole("B"));
  EXPECT_TRUE(g.AddUser("u").ok());
  EXPECT_TRUE(g.AddUser("u").IsAlreadyExists());
  EXPECT_TRUE(g.HasUser("u"));
}

TEST(RoleGraphTest, AssignRequiresExistingEntities) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("A").ok());
  ASSERT_TRUE(g.AddUser("u").ok());
  EXPECT_TRUE(g.AssignRole("ghost", "A").IsNotFound());
  EXPECT_TRUE(g.AssignRole("u", "Ghost").IsNotFound());
  EXPECT_TRUE(g.AssignRole("u", "A").ok());
  EXPECT_TRUE(g.AssignRole("u", "A").ok());  // idempotent
  EXPECT_EQ((*g.DirectRoles("u")).size(), 1u);
}

TEST(RoleGraphTest, ActiveRolesCloseOverJuniors) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("Employee").ok());
  ASSERT_TRUE(g.AddRole("Manager").ok());
  ASSERT_TRUE(g.AddRole("Director").ok());
  ASSERT_TRUE(g.AddInheritance("Manager", "Employee").ok());
  ASSERT_TRUE(g.AddInheritance("Director", "Manager").ok());
  ASSERT_TRUE(g.AddUser("d").ok());
  ASSERT_TRUE(g.AssignRole("d", "Director").ok());
  std::vector<std::string> roles = *g.ActiveRoles("d");
  EXPECT_EQ(roles, (std::vector<std::string>{"Director", "Employee", "Manager"}));
}

TEST(RoleGraphTest, InheritanceRejectsCycles) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("A").ok());
  ASSERT_TRUE(g.AddRole("B").ok());
  ASSERT_TRUE(g.AddRole("C").ok());
  ASSERT_TRUE(g.AddInheritance("A", "B").ok());
  ASSERT_TRUE(g.AddInheritance("B", "C").ok());
  EXPECT_TRUE(g.AddInheritance("C", "A").IsInvalidArgument());
  EXPECT_TRUE(g.AddInheritance("A", "A").IsInvalidArgument());
  EXPECT_TRUE(g.AddInheritance("A", "Ghost").IsNotFound());
}

TEST(RoleGraphTest, UnknownUserIsNotFound) {
  RoleGraph g;
  EXPECT_TRUE(g.DirectRoles("ghost").status().IsNotFound());
  EXPECT_TRUE(g.ActiveRoles("ghost").status().IsNotFound());
}

TEST(PolicyTest, AddValidates) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  EXPECT_TRUE(store.AddPolicy(g, {"Ghost", "analysis", 0.05}).IsNotFound());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "", 0.05}).IsInvalidArgument());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", -0.1}).IsInvalidArgument());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", 1.1}).IsInvalidArgument());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.3}).ok());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.4}).IsAlreadyExists());
  EXPECT_EQ(store.policies().size(), 1u);
}

TEST(PolicyTest, PaperPoliciesResolvePerRole) {
  // P1 = <Secretary, analysis, 0.05>, P2 = <Manager, investment, 0.06>.
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Secretary", "analysis", 0.05}).ok());
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.06}).ok());

  PolicyDecision sam = *store.Resolve(g, "sam", "analysis");
  EXPECT_DOUBLE_EQ(sam.threshold, 0.05);
  ASSERT_EQ(sam.matched.size(), 1u);
  EXPECT_EQ(sam.matched[0].ToString(), "<Secretary, analysis, 0.05>");
  // The query result p38 = 0.058 passes P1 but fails P2.
  EXPECT_TRUE(sam.Allows(0.058));

  PolicyDecision mary = *store.Resolve(g, "mary", "investment");
  EXPECT_DOUBLE_EQ(mary.threshold, 0.06);
  EXPECT_FALSE(mary.Allows(0.058));
  EXPECT_TRUE(mary.Allows(0.065));
  EXPECT_FALSE(mary.Allows(0.06));  // strictly higher than beta
}

TEST(PolicyTest, NoMatchingPolicyMeansUnrestricted) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.06}).ok());
  PolicyDecision d = *store.Resolve(g, "sam", "investment");
  EXPECT_DOUBLE_EQ(d.threshold, 0.0);
  EXPECT_TRUE(d.matched.empty());
  EXPECT_TRUE(d.Allows(0.001));
  EXPECT_FALSE(d.Allows(0.0));  // still strictly greater than 0
}

TEST(PolicyTest, WildcardPurposeApplies) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", kAnyPurpose, 0.5}).ok());
  EXPECT_DOUBLE_EQ((*store.Resolve(g, "mary", "anything")).threshold, 0.5);
  EXPECT_DOUBLE_EQ((*store.Resolve(g, "sam", "anything")).threshold, 0.0);
}

TEST(PolicyTest, MostRestrictiveOfMultipleMatchesWins) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", kAnyPurpose, 0.3}).ok());
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.06}).ok());
  PolicyDecision d = *store.Resolve(g, "mary", "investment");
  EXPECT_DOUBLE_EQ(d.threshold, 0.3);
  ASSERT_EQ(d.matched.size(), 2u);
  // Sorted most restrictive first.
  EXPECT_DOUBLE_EQ(d.matched[0].threshold, 0.3);
}

TEST(PolicyTest, InheritedRolesCarryPolicies) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("Employee").ok());
  ASSERT_TRUE(g.AddRole("Manager").ok());
  ASSERT_TRUE(g.AddInheritance("Manager", "Employee").ok());
  ASSERT_TRUE(g.AddUser("m").ok());
  ASSERT_TRUE(g.AssignRole("m", "Manager").ok());
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Employee", "reporting", 0.2}).ok());
  // The manager inherits the employee restriction.
  EXPECT_DOUBLE_EQ((*store.Resolve(g, "m", "reporting")).threshold, 0.2);
}

TEST(PolicyTest, ResolveUnknownUserFails) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  EXPECT_TRUE(store.Resolve(g, "ghost", "x").status().IsNotFound());
}

TEST(PolicyTest, TableScopedPoliciesApplyOnlyToThatData) {
  // §3.2: the policy is selected by role, purpose *and the data accessed*.
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.06, "proposal"}).ok());
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.3, "payroll"}).ok());

  // Touching proposal only: beta = 0.06.
  PolicyDecision d1 = *store.Resolve(g, "mary", "investment", {"Proposal"});
  EXPECT_DOUBLE_EQ(d1.threshold, 0.06);
  ASSERT_EQ(d1.matched.size(), 1u);
  EXPECT_EQ(d1.matched[0].ToString(), "<Manager, investment, 0.06 @ proposal>");

  // Touching both: the most restrictive applicable policy wins.
  PolicyDecision d2 = *store.Resolve(g, "mary", "investment", {"proposal", "payroll"});
  EXPECT_DOUBLE_EQ(d2.threshold, 0.3);
  EXPECT_EQ(d2.matched.size(), 2u);

  // Touching neither: unrestricted.
  PolicyDecision d3 = *store.Resolve(g, "mary", "investment", {"other"});
  EXPECT_DOUBLE_EQ(d3.threshold, 0.0);

  // Without table context only unscoped policies match.
  PolicyDecision d4 = *store.Resolve(g, "mary", "investment");
  EXPECT_DOUBLE_EQ(d4.threshold, 0.0);
}

TEST(PolicyTest, DuplicateDetectionIsPerTableScope) {
  RoleGraph g = VentureCapitalRoles();
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.1}).ok());
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.2, "t"}).ok());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.3, "T"}).IsAlreadyExists());
  EXPECT_TRUE(store.AddPolicy(g, {"Manager", "x", 0.3}).IsAlreadyExists());
}

TEST(PolicyIoTest, TableScopedPoliciesRoundTrip) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("R").ok());
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"R", "p", 0.25, "orders"}).ok());
  std::string text = *SerializeAccessConfig(g, store);
  EXPECT_NE(text.find("policy R p 0.25 orders"), std::string::npos);
  RoleGraph g2;
  PolicyStore store2;
  ASSERT_TRUE(ParseAccessConfig(text, &g2, &store2).ok());
  ASSERT_EQ(store2.policies().size(), 1u);
  EXPECT_EQ(store2.policies()[0].table, "orders");
}

TEST(RoleGraphTest, EnumerationAccessors) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("B").ok());
  ASSERT_TRUE(g.AddRole("A").ok());
  ASSERT_TRUE(g.AddInheritance("B", "A").ok());
  ASSERT_TRUE(g.AddUser("u").ok());
  ASSERT_TRUE(g.AssignRole("u", "B").ok());
  EXPECT_EQ(g.Roles(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(g.Users(), (std::vector<std::string>{"u"}));
  auto edges = g.Inheritances();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (std::pair<std::string, std::string>{"B", "A"}));
}

TEST(PolicyIoTest, RoundTripsFullConfiguration) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("Employee").ok());
  ASSERT_TRUE(g.AddRole("Manager").ok());
  ASSERT_TRUE(g.AddInheritance("Manager", "Employee").ok());
  ASSERT_TRUE(g.AddUser("mary").ok());
  ASSERT_TRUE(g.AssignRole("mary", "Manager").ok());
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"Manager", "investment", 0.06}).ok());
  ASSERT_TRUE(store.AddPolicy(g, {"Employee", "*", 0.01}).ok());

  std::string text = *SerializeAccessConfig(g, store);
  RoleGraph g2;
  PolicyStore store2;
  ASSERT_TRUE(ParseAccessConfig(text, &g2, &store2).ok());

  EXPECT_EQ(g2.Roles(), g.Roles());
  EXPECT_EQ(g2.Users(), g.Users());
  EXPECT_EQ(g2.Inheritances(), g.Inheritances());
  ASSERT_EQ(store2.policies().size(), 2u);
  PolicyDecision d = *store2.Resolve(g2, "mary", "investment");
  EXPECT_DOUBLE_EQ(d.threshold, 0.06);
  // The inherited wildcard policy also matched.
  EXPECT_EQ(d.matched.size(), 2u);
}

TEST(PolicyIoTest, CommentsAndBlankLinesIgnored) {
  RoleGraph g;
  PolicyStore store;
  ASSERT_TRUE(ParseAccessConfig("# header\n\nrole A\n  # indented comment\nuser u\n",
                                &g, &store)
                  .ok());
  EXPECT_TRUE(g.HasRole("A"));
  EXPECT_TRUE(g.HasUser("u"));
}

TEST(PolicyIoTest, ParseErrorsCarryLineNumbers) {
  RoleGraph g;
  PolicyStore store;
  Status s = ParseAccessConfig("role A\nbogus directive x\n", &g, &store);
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);

  RoleGraph g2;
  PolicyStore store2;
  // Forward reference: assigning before declaring the user.
  Status s2 = ParseAccessConfig("role A\nassign u A\n", &g2, &store2);
  EXPECT_TRUE(s2.IsNotFound());
  EXPECT_NE(s2.message().find("line 2"), std::string::npos);

  RoleGraph g3;
  PolicyStore store3;
  EXPECT_TRUE(ParseAccessConfig("role A\npolicy A p high\n", &g3, &store3).IsParseError());
  RoleGraph g4;
  PolicyStore store4;
  EXPECT_TRUE(
      ParseAccessConfig("role A extra-token\n", &g4, &store4).IsParseError());
}

TEST(PolicyIoTest, WhitespaceNamesRejectedOnSerialize) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("Has Space").ok());
  PolicyStore store;
  EXPECT_TRUE(SerializeAccessConfig(g, store).status().IsInvalidArgument());
}

TEST(PolicyIoTest, FileRoundTrip) {
  RoleGraph g;
  ASSERT_TRUE(g.AddRole("R").ok());
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(g, {"R", "p", 0.42}).ok());
  std::string path = ::testing::TempDir() + "/pcqe_access.conf";
  ASSERT_TRUE(SaveAccessConfig(g, store, path).ok());
  RoleGraph g2;
  PolicyStore store2;
  ASSERT_TRUE(LoadAccessConfig(path, &g2, &store2).ok());
  EXPECT_DOUBLE_EQ(store2.policies()[0].threshold, 0.42);
  EXPECT_TRUE(LoadAccessConfig("/nonexistent/x.conf", &g2, &store2).IsNotFound());
}

}  // namespace
}  // namespace pcqe
