// Unit tests for relational/value.h.

#include "relational/value.h"

#include <gtest/gtest.h>

namespace pcqe {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(3).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, CheckedAccessors) {
  EXPECT_EQ(*Value::Bool(true).AsBool(), true);
  EXPECT_EQ(*Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(*Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(*Value::String("hi").AsString(), "hi");
  // Int widens to double.
  EXPECT_DOUBLE_EQ(*Value::Int(7).AsDouble(), 7.0);
  // Mismatches are InvalidArgument.
  EXPECT_TRUE(Value::Int(1).AsBool().status().IsInvalidArgument());
  EXPECT_TRUE(Value::String("x").AsInt().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Bool(true).AsDouble().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Null().AsString().status().IsInvalidArgument());
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(2)), 1);
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(Value::String("b").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::Bool(false).Compare(Value::Bool(true)), -1);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumericAcrossTypes) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(Value::Double(3.5).Compare(Value::Int(3)), 1);
}

TEST(ValueTest, CrossTypeOrderingIsTotal) {
  // NULL < BOOL < numeric < STRING.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("")), 0);
}

TEST(ValueTest, EqualsMatchesCompare) {
  EXPECT_TRUE(Value::Int(2).Equals(Value::Double(2.0)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));  // grouping semantics
  EXPECT_FALSE(Value::Int(2).Equals(Value::Int(3)));
  EXPECT_TRUE(Value::String("abc") == Value::String("abc"));
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  // Not required by the contract but expected in practice:
  EXPECT_NE(Value::Int(3).Hash(), Value::Int(4).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataTypeToString(DataType::kNull), "NULL");
  EXPECT_EQ(DataTypeToString(DataType::kBool), "BOOLEAN");
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "BIGINT");
  EXPECT_EQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_EQ(DataTypeToString(DataType::kString), "VARCHAR");
}

}  // namespace
}  // namespace pcqe
