// Unit tests for the lineage arena and confidence evaluation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "lineage/evaluate.h"
#include "lineage/lineage.h"
#include "lineage/sensitivity.h"

namespace pcqe {
namespace {

TEST(LineageArenaTest, ConstantsAreInterned) {
  LineageArena a;
  EXPECT_EQ(a.False(), a.False());
  EXPECT_EQ(a.True(), a.True());
  EXPECT_EQ(a.op(a.False()), LineageOp::kFalse);
  EXPECT_EQ(a.op(a.True()), LineageOp::kTrue);
}

TEST(LineageArenaTest, VariablesAreInterned) {
  LineageArena a;
  LineageRef v1 = a.Var(42);
  LineageRef v2 = a.Var(42);
  LineageRef v3 = a.Var(43);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  EXPECT_EQ(a.var(v1), 42u);
}

TEST(LineageArenaTest, AndNormalization) {
  LineageArena a;
  LineageRef x = a.Var(1), y = a.Var(2);
  // Identity / absorbing elements.
  EXPECT_EQ(a.And(x, a.True()), x);
  EXPECT_EQ(a.And(x, a.False()), a.False());
  EXPECT_EQ(a.And(std::vector<LineageRef>{}), a.True());
  // Flattening: (x & y) & x == x & y (dedup + flatten).
  LineageRef xy = a.And(x, y);
  EXPECT_EQ(a.And(xy, x), xy);
  // Single child collapses.
  EXPECT_EQ(a.And(std::vector<LineageRef>{x}), x);
}

TEST(LineageArenaTest, OrNormalization) {
  LineageArena a;
  LineageRef x = a.Var(1), y = a.Var(2);
  EXPECT_EQ(a.Or(x, a.False()), x);
  EXPECT_EQ(a.Or(x, a.True()), a.True());
  EXPECT_EQ(a.Or(std::vector<LineageRef>{}), a.False());
  LineageRef xy = a.Or(x, y);
  EXPECT_EQ(a.Or(xy, y), xy);
}

TEST(LineageArenaTest, NotNormalization) {
  LineageArena a;
  LineageRef x = a.Var(1);
  EXPECT_EQ(a.Not(a.True()), a.False());
  EXPECT_EQ(a.Not(a.False()), a.True());
  EXPECT_EQ(a.Not(a.Not(x)), x);
  EXPECT_EQ(a.op(a.Not(x)), LineageOp::kNot);
}

TEST(LineageArenaTest, VariablesListsDistinctIds) {
  LineageArena a;
  LineageRef f = a.And(a.Or(a.Var(2), a.Var(3)), a.Var(13));
  std::vector<LineageVarId> vars = a.Variables(f);
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_TRUE(a.IsReadOnce(f));
  EXPECT_TRUE(a.SharedVariables(f).empty());
}

TEST(LineageArenaTest, SharedVariablesDetected) {
  LineageArena a;
  // x appears under both AND children.
  LineageRef f = a.And(a.Or(a.Var(1), a.Var(2)), a.Or(a.Var(1), a.Var(3)));
  std::vector<LineageVarId> shared = a.SharedVariables(f);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], 1u);
  EXPECT_FALSE(a.IsReadOnce(f));
}

TEST(LineageArenaTest, DagSharingCountsAsMultipleOccurrences) {
  LineageArena a;
  LineageRef sub = a.Or(a.Var(1), a.Var(2));
  LineageRef f = a.And(std::vector<LineageRef>{sub, a.Or(std::vector<LineageRef>{sub, a.Var(3)})});
  // sub appears twice as a DAG child; its variables are shared.
  std::vector<LineageVarId> shared = a.SharedVariables(f);
  EXPECT_EQ(shared.size(), 2u);
}

TEST(LineageArenaTest, ToStringRendersStructure) {
  LineageArena a;
  LineageRef f = a.And(a.Or(a.Var(2), a.Var(3)), a.Var(13));
  EXPECT_EQ(a.ToString(f), "((t2 | t3) & t13)");
  EXPECT_EQ(a.ToString(a.Not(a.Var(1))), "!t1");
  EXPECT_EQ(a.ToString(a.True()), "true");
}

TEST(EvaluateTest, RunningExampleConfidences) {
  // Paper §3.1: p25 = p02 + p03 - p02*p03 = 0.58; p38 = p25 * p13 = 0.058.
  LineageArena a;
  LineageRef p25 = a.Or(a.Var(2), a.Var(3));
  LineageRef p38 = a.And(p25, a.Var(13));
  ConfidenceMap probs;
  probs.Set(2, 0.3);
  probs.Set(3, 0.4);
  probs.Set(13, 0.1);
  EXPECT_NEAR(EvaluateIndependent(a, p25, probs), 0.58, 1e-12);
  EXPECT_NEAR(EvaluateIndependent(a, p38, probs), 0.058, 1e-12);
  // Raising tuple 03 to 0.5 gives p25 = 0.65, p38 = 0.065 (the cheap fix).
  probs.Set(3, 0.5);
  EXPECT_NEAR(EvaluateIndependent(a, p38, probs), 0.065, 1e-12);
  // Raising tuple 02 to 0.4 instead gives 0.064 (the expensive fix).
  probs.Set(3, 0.4);
  probs.Set(2, 0.4);
  EXPECT_NEAR(EvaluateIndependent(a, p38, probs), 0.064, 1e-12);
}

TEST(EvaluateTest, ConstantsAndNot) {
  LineageArena a;
  ConfidenceMap probs;
  probs.Set(1, 0.3);
  EXPECT_DOUBLE_EQ(EvaluateIndependent(a, a.True(), probs), 1.0);
  EXPECT_DOUBLE_EQ(EvaluateIndependent(a, a.False(), probs), 0.0);
  EXPECT_NEAR(EvaluateIndependent(a, a.Not(a.Var(1)), probs), 0.7, 1e-12);
}

TEST(EvaluateTest, ConfidenceMapFallback) {
  ConfidenceMap probs(0.25);
  EXPECT_DOUBLE_EQ(probs.Get(99), 0.25);
  probs.Set(99, 0.5);
  EXPECT_DOUBLE_EQ(probs.Get(99), 0.5);
  EXPECT_EQ(probs.size(), 1u);
}

TEST(EvaluateTest, ExactEqualsIndependentOnReadOnce) {
  LineageArena a;
  LineageRef f = a.And(a.Or(a.Var(1), a.Var(2)), a.Or(a.Var(3), a.Var(4)));
  ConfidenceMap probs;
  probs.Set(1, 0.2);
  probs.Set(2, 0.5);
  probs.Set(3, 0.7);
  probs.Set(4, 0.1);
  double indep = EvaluateIndependent(a, f, probs);
  double exact = *EvaluateExact(a, f, probs);
  EXPECT_NEAR(indep, exact, 1e-12);
}

TEST(EvaluateTest, ExactHandlesSharedVariables) {
  LineageArena a;
  // f = x OR (x AND y): truth-equivalent to x, so P(f) must equal P(x).
  LineageRef x = a.Var(1), y = a.Var(2);
  LineageRef f = a.Or(x, a.And(x, y));
  ConfidenceMap probs;
  probs.Set(1, 0.3);
  probs.Set(2, 0.6);
  EXPECT_NEAR(*EvaluateExact(a, f, probs), 0.3, 1e-12);
  // The independence approximation overestimates here.
  EXPECT_GT(EvaluateIndependent(a, f, probs), 0.3);
}

TEST(EvaluateTest, ExactIdempotentConjunction) {
  LineageArena a;
  // x AND x simplifies at build time to x; exact and independent agree.
  LineageRef f = a.And(a.Var(1), a.Var(1));
  ConfidenceMap probs;
  probs.Set(1, 0.4);
  EXPECT_NEAR(*EvaluateExact(a, f, probs), 0.4, 1e-12);
  EXPECT_NEAR(EvaluateIndependent(a, f, probs), 0.4, 1e-12);
}

TEST(EvaluateTest, ExactContradictionIsZero) {
  LineageArena a;
  // x AND NOT x is unsatisfiable.
  LineageRef f = a.And(a.Var(1), a.Not(a.Var(1)));
  ConfidenceMap probs;
  probs.Set(1, 0.5);
  EXPECT_NEAR(*EvaluateExact(a, f, probs), 0.0, 1e-12);
  // Independent evaluation wrongly reports 0.25 — the documented gap.
  EXPECT_NEAR(EvaluateIndependent(a, f, probs), 0.25, 1e-12);
}

TEST(EvaluateTest, ExactBudgetIsEnforced) {
  LineageArena a;
  // Build a formula with many shared variables.
  std::vector<LineageRef> left, right;
  for (LineageVarId i = 0; i < 25; ++i) {
    left.push_back(a.Var(i));
    right.push_back(a.Var(i));
  }
  LineageRef f = a.And(a.Or(left), a.And(right));
  ConfidenceMap probs(0.5);
  ExactEvalOptions options;
  options.max_shared_variables = 10;
  EXPECT_TRUE(EvaluateExact(a, f, probs, options).status().IsResourceExhausted());
}

TEST(EvaluateTest, CopyFromPreservesSemantics) {
  LineageArena src;
  LineageRef f = src.And(src.Or(src.Var(2), src.Var(3)), src.Not(src.Var(13)));
  LineageArena dst;
  dst.Var(999);  // pre-existing content must not interfere
  LineageRef copy = dst.CopyFrom(src, f);
  ConfidenceMap probs;
  probs.Set(2, 0.3);
  probs.Set(3, 0.4);
  probs.Set(13, 0.1);
  EXPECT_NEAR(EvaluateIndependent(src, f, probs),
              EvaluateIndependent(dst, copy, probs), 1e-12);
  EXPECT_EQ(src.ToString(f), dst.ToString(copy));
}

TEST(SensitivityTest, RunningExampleDerivatives) {
  // p38 = (p02 + p03 − p02·p03) · p13 at (0.3, 0.4, 0.1).
  LineageArena a;
  LineageRef f = a.And(a.Or(a.Var(2), a.Var(3)), a.Var(13));
  ConfidenceMap probs;
  probs.Set(2, 0.3);
  probs.Set(3, 0.4);
  probs.Set(13, 0.1);
  // ∂/∂p02 = (1 − p03)·p13 = 0.06; ∂/∂p03 = (1 − p02)·p13 = 0.07;
  // ∂/∂p13 = p02 + p03 − p02·p03 = 0.58.
  EXPECT_NEAR(Sensitivity(a, f, probs, 2), 0.06, 1e-12);
  EXPECT_NEAR(Sensitivity(a, f, probs, 3), 0.07, 1e-12);
  EXPECT_NEAR(Sensitivity(a, f, probs, 13), 0.58, 1e-12);
}

TEST(SensitivityTest, NegatedVariableHasNegativeSensitivity) {
  LineageArena a;
  LineageRef f = a.And(a.Var(1), a.Not(a.Var(2)));
  ConfidenceMap probs;
  probs.Set(1, 0.5);
  probs.Set(2, 0.3);
  EXPECT_NEAR(Sensitivity(a, f, probs, 1), 0.7, 1e-12);
  EXPECT_NEAR(Sensitivity(a, f, probs, 2), -0.5, 1e-12);
}

TEST(SensitivityTest, RankInfluenceOrdersByPotential) {
  // t13 dominates: sensitivity 0.58 with headroom 0.9 (potential 0.522).
  LineageArena a;
  LineageRef f = a.And(a.Or(a.Var(2), a.Var(3)), a.Var(13));
  ConfidenceMap probs;
  probs.Set(2, 0.3);
  probs.Set(3, 0.4);
  probs.Set(13, 0.1);
  std::vector<InfluenceEntry> ranking = RankInfluence(a, f, probs);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].var, 13u);
  EXPECT_NEAR(ranking[0].potential(), 0.58 * 0.9, 1e-12);
  // top_k truncation.
  EXPECT_EQ(RankInfluence(a, f, probs, 1).size(), 1u);
}

TEST(SensitivityTest, MatchesFiniteDifferenceOnReadOnce) {
  // For read-once formulas P is multilinear: P(p + h) − P(p) = h · ∂P/∂p.
  LineageArena a;
  LineageRef f = a.Or(a.And(a.Var(1), a.Var(2)), a.And(a.Var(3), a.Var(4)));
  ConfidenceMap probs;
  probs.Set(1, 0.2);
  probs.Set(2, 0.7);
  probs.Set(3, 0.4);
  probs.Set(4, 0.5);
  for (LineageVarId v : {1u, 2u, 3u, 4u}) {
    double base = EvaluateIndependent(a, f, probs);
    ConfidenceMap bumped = probs;
    bumped.Set(v, probs.Get(v) + 0.05);
    double delta = EvaluateIndependent(a, f, bumped) - base;
    EXPECT_NEAR(delta / 0.05, Sensitivity(a, f, probs, v), 1e-9);
  }
}

// Property: on random read-once formulas, exact == independent; and Monte
// Carlo sampling agrees with the exact evaluation on shared formulas.
class LineageRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LineageRandomTest, ExactMatchesBruteForceTruthTable) {
  Rng rng(GetParam());
  LineageArena a;
  // Random formula over 6 variables with possible sharing.
  const size_t kVars = 6;
  std::vector<LineageRef> pool;
  for (LineageVarId v = 0; v < kVars; ++v) pool.push_back(a.Var(v));
  for (int step = 0; step < 6; ++step) {
    LineageRef x = pool[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    LineageRef y = pool[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    switch (rng.UniformInt(0, 2)) {
      case 0:
        pool.push_back(a.And(x, y));
        break;
      case 1:
        pool.push_back(a.Or(x, y));
        break;
      default:
        pool.push_back(a.Not(x));
    }
  }
  LineageRef f = pool.back();
  ConfidenceMap probs;
  std::vector<double> p(kVars);
  for (LineageVarId v = 0; v < kVars; ++v) {
    p[v] = rng.Uniform(0.05, 0.95);
    probs.Set(v, p[v]);
  }

  // Ground truth: full 2^6 truth-table expectation.
  double truth = 0.0;
  for (size_t mask = 0; mask < (1u << kVars); ++mask) {
    double weight = 1.0;
    ConfidenceMap assignment;
    for (LineageVarId v = 0; v < kVars; ++v) {
      bool on = (mask >> v) & 1;
      weight *= on ? p[v] : 1.0 - p[v];
      assignment.Set(v, on ? 1.0 : 0.0);
    }
    truth += weight * EvaluateIndependent(a, f, assignment);
  }
  EXPECT_NEAR(*EvaluateExact(a, f, probs), truth, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineageRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace pcqe
