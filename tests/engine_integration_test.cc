// Integration tests: the full PCQE pipeline on the paper's running example
// (§3.1, Tables 1-3, policies P1/P2) and the multi-query extension.

#include <gtest/gtest.h>

#include "engine/pcqe_engine.h"

namespace pcqe {
namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

/// Full venture-capital setup: data, roles (Secretary, Manager), policies
/// P1 = <Secretary, analysis, 0.05> and P2 = <Manager, investment, 0.06>.
class PcqeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* proposal = *catalog_.CreateTable(
        "Proposal", Schema({{"company", DataType::kString, ""},
                            {"proposal", DataType::kString, ""},
                            {"funding", DataType::kDouble, ""}}));
    ASSERT_TRUE(proposal
                    ->Insert({Value::String("AlphaTech"), Value::String("expansion"),
                              Value::Double(2e6)},
                             0.5)
                    .ok());
    id02_ = *proposal->Insert(
        {Value::String("BlueSky"), Value::String("marketing"), Value::Double(8e5)}, 0.3,
        *MakeLinearCost(1000.0));  // +0.1 costs 100
    id03_ = *proposal->Insert(
        {Value::String("BlueSky"), Value::String("research"), Value::Double(5e5)}, 0.4,
        *MakeLinearCost(100.0));  // +0.1 costs 10
    Table* info = *catalog_.CreateTable(
        "CompanyInfo",
        Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
    ASSERT_TRUE(
        info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8).ok());
    id13_ = *info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                          *MakeLinearCost(10000.0));  // +0.1 costs 1000

    RoleGraph roles;
    ASSERT_TRUE(roles.AddRole("Secretary").ok());
    ASSERT_TRUE(roles.AddRole("Manager").ok());
    ASSERT_TRUE(roles.AddUser("sam").ok());
    ASSERT_TRUE(roles.AddUser("mary").ok());
    ASSERT_TRUE(roles.AssignRole("sam", "Secretary").ok());
    ASSERT_TRUE(roles.AssignRole("mary", "Manager").ok());
    PolicyStore policies;
    ASSERT_TRUE(policies.AddPolicy(roles, {"Secretary", "analysis", 0.05}).ok());
    ASSERT_TRUE(policies.AddPolicy(roles, {"Manager", "investment", 0.06}).ok());
    engine_ = std::make_unique<PcqeEngine>(&catalog_, std::move(roles),
                                           std::move(policies));
  }

  Catalog catalog_;
  std::unique_ptr<PcqeEngine> engine_;
  BaseTupleId id02_ = 0, id03_ = 0, id13_ = 0;
};

TEST_F(PcqeEngineTest, SecretaryUnderP1SeesTheResult) {
  // p38 = 0.058 > 0.05: released, no strategy needed.
  QueryOutcome outcome =
      *engine_->Submit({kCandidateQuery, "sam", "analysis", 1.0});
  EXPECT_DOUBLE_EQ(outcome.policy.threshold, 0.05);
  ASSERT_EQ(outcome.intermediate.rows.size(), 1u);
  EXPECT_EQ(outcome.released.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.released_fraction, 1.0);
  EXPECT_FALSE(outcome.proposal.needed);
  EXPECT_NE(outcome.ReleasedTable().find("BlueSky"), std::string::npos);
}

TEST_F(PcqeEngineTest, ManagerUnderP2IsBlockedWithCheapestProposal) {
  // p38 = 0.058 < 0.06: blocked; the optimal fix raises tuple 03 (cost 10),
  // not tuple 02 (cost 100) — exactly the paper's §3.1 reasoning.
  QueryOutcome outcome =
      *engine_->Submit({kCandidateQuery, "mary", "investment", 1.0});
  EXPECT_DOUBLE_EQ(outcome.policy.threshold, 0.06);
  EXPECT_TRUE(outcome.released.empty());
  EXPECT_DOUBLE_EQ(outcome.released_fraction, 0.0);
  ASSERT_TRUE(outcome.proposal.needed);
  EXPECT_TRUE(outcome.proposal.feasible);
  EXPECT_NEAR(outcome.proposal.total_cost, 10.0, 1e-9);
  ASSERT_EQ(outcome.proposal.actions.size(), 1u);
  EXPECT_EQ(outcome.proposal.actions[0].base_tuple, id03_);
  EXPECT_NEAR(outcome.proposal.actions[0].to, 0.5, 1e-9);
  EXPECT_EQ(outcome.proposal.algorithm, "heuristic");  // 3 tuples -> exact
}

TEST_F(PcqeEngineTest, AcceptProposalThenRequeryReleases) {
  QueryRequest request{kCandidateQuery, "mary", "investment", 1.0};
  QueryOutcome blocked = *engine_->Submit(request);
  ASSERT_TRUE(blocked.proposal.needed);
  ASSERT_TRUE(engine_->AcceptProposal(blocked.proposal).ok());
  // Tuple 03 now holds 0.5 in the database; p38 = 0.065 > 0.06.
  EXPECT_DOUBLE_EQ((*catalog_.FindTuple(id03_))->confidence(), 0.5);
  QueryOutcome after = *engine_->Submit(request);
  ASSERT_EQ(after.released.size(), 1u);
  EXPECT_NEAR(after.intermediate.rows[0].confidence, 0.065, 1e-12);
  EXPECT_FALSE(after.proposal.needed);
  EXPECT_NEAR(engine_->improver().total_cost_spent(), 10.0, 1e-9);
}

TEST_F(PcqeEngineTest, RequiredFractionGatesStrategyFinding) {
  // Needing 0% means the block is acceptable: no proposal.
  QueryOutcome outcome =
      *engine_->Submit({kCandidateQuery, "mary", "investment", 0.0});
  EXPECT_TRUE(outcome.released.empty());
  EXPECT_FALSE(outcome.proposal.needed);
}

TEST_F(PcqeEngineTest, UserWithoutPolicySeesEverything) {
  RoleGraph* roles = engine_->roles();
  ASSERT_TRUE(roles->AddUser("root").ok());
  ASSERT_TRUE(roles->AddRole("Admin").ok());
  ASSERT_TRUE(roles->AssignRole("root", "Admin").ok());
  QueryOutcome outcome = *engine_->Submit({kCandidateQuery, "root", "anything", 1.0});
  EXPECT_DOUBLE_EQ(outcome.policy.threshold, 0.0);
  EXPECT_EQ(outcome.released.size(), 1u);
}

TEST_F(PcqeEngineTest, UnknownUserFails) {
  EXPECT_TRUE(
      engine_->Submit({kCandidateQuery, "ghost", "analysis", 1.0}).status().IsNotFound());
}

TEST_F(PcqeEngineTest, BadSqlPropagatesParseError) {
  EXPECT_TRUE(
      engine_->Submit({"SELEC oops", "sam", "analysis", 1.0}).status().IsParseError());
}

TEST_F(PcqeEngineTest, BadFractionRejected) {
  EXPECT_TRUE(engine_->Submit({kCandidateQuery, "sam", "analysis", 1.5})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PcqeEngineTest, ExplicitSolverSelection) {
  for (SolverKind kind : {SolverKind::kHeuristic, SolverKind::kGreedy, SolverKind::kDnc,
                          SolverKind::kBruteForce}) {
    QueryRequest request{kCandidateQuery, "mary", "investment", 1.0, kind};
    QueryOutcome outcome = *engine_->Submit(request);
    ASSERT_TRUE(outcome.proposal.needed);
    EXPECT_TRUE(outcome.proposal.feasible);
    // All solvers find the optimum on this tiny instance.
    EXPECT_NEAR(outcome.proposal.total_cost, 10.0, 1e-9);
  }
}

TEST_F(PcqeEngineTest, EmptyResultNeedsNoStrategy) {
  QueryOutcome outcome = *engine_->Submit(
      {"SELECT * FROM proposal WHERE company = 'Nobody'", "mary", "investment", 1.0});
  EXPECT_TRUE(outcome.intermediate.rows.empty());
  EXPECT_DOUBLE_EQ(outcome.released_fraction, 1.0);
  EXPECT_FALSE(outcome.proposal.needed);
}

TEST_F(PcqeEngineTest, AcceptingEmptyProposalFails) {
  StrategyProposal empty;
  EXPECT_TRUE(engine_->AcceptProposal(empty).IsInvalidArgument());
}

TEST_F(PcqeEngineTest, MultiQueryBatchSharesOneStrategy) {
  // Two investment queries from the manager; both blocked initially. The
  // combined problem must satisfy both with one improvement plan.
  QueryRequest q1{kCandidateQuery, "mary", "investment", 1.0};
  QueryRequest q2{
      "SELECT c.company FROM (SELECT DISTINCT company FROM proposal WHERE funding < "
      "900000) AS c JOIN companyinfo AS ci ON c.company = ci.company",
      "mary", "investment", 1.0};
  std::vector<QueryOutcome> outcomes = *engine_->SubmitBatch({q1, q2});
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].proposal.needed);
  EXPECT_TRUE(outcomes[0].proposal.feasible);
  EXPECT_FALSE(outcomes[1].proposal.needed);  // shared plan rides on the first

  ASSERT_TRUE(engine_->AcceptProposal(outcomes[0].proposal).ok());
  std::vector<QueryOutcome> after = *engine_->SubmitBatch({q1, q2});
  EXPECT_EQ(after[0].released.size(), 1u);
  EXPECT_EQ(after[1].released.size(), 1u);
  EXPECT_FALSE(after[0].proposal.needed);
}

TEST_F(PcqeEngineTest, BatchWithMixedThresholdsRejected) {
  QueryRequest manager{kCandidateQuery, "mary", "investment", 1.0};
  // Secretary's analysis threshold is 0.05; with required_fraction = 1.0 and
  // a row at 0.058 the secretary is satisfied, so only the manager needs
  // improvement -> fine. Force a conflict with a stricter secretary query.
  RoleGraph* roles = engine_->roles();
  PolicyStore* policies = engine_->policies();
  ASSERT_TRUE(policies->AddPolicy(*roles, {"Secretary", "audit", 0.5}).ok());
  QueryRequest secretary{kCandidateQuery, "sam", "audit", 1.0};
  EXPECT_TRUE(
      engine_->SubmitBatch({manager, secretary}).status().IsInvalidArgument());
}

TEST_F(PcqeEngineTest, EmptyBatchRejected) {
  EXPECT_TRUE(engine_->SubmitBatch({}).status().IsInvalidArgument());
}

TEST_F(PcqeEngineTest, MixedThresholdsRejectedOnlyWhenBothNeedImprovement) {
  // Same-user pair at one threshold is fine; adding a second user is fine as
  // long as at most one distinct threshold actually needs improvement. A
  // satisfied secretary query (fraction 0) rides along a blocked manager
  // query without tripping the mixed-threshold guard.
  QueryRequest manager{kCandidateQuery, "mary", "investment", 1.0};
  QueryRequest secretary{kCandidateQuery, "sam", "analysis", 0.0};
  auto outcomes = engine_->SubmitBatch({manager, secretary});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_TRUE((*outcomes)[0].proposal.needed);
  EXPECT_FALSE((*outcomes)[1].proposal.needed);

  // But when both thresholds demand improvement the batch must reject:
  // one confidence increment cannot target two cutoffs soundly.
  RoleGraph* roles = engine_->roles();
  PolicyStore* policies = engine_->policies();
  ASSERT_TRUE(policies->AddPolicy(*roles, {"Secretary", "audit", 0.9}).ok());
  QueryRequest audit{kCandidateQuery, "sam", "audit", 1.0};
  Status mixed = engine_->SubmitBatch({manager, audit}).status();
  EXPECT_TRUE(mixed.IsInvalidArgument()) << mixed.ToString();
  EXPECT_NE(mixed.message().find("threshold"), std::string::npos);
}

TEST_F(PcqeEngineTest, ZeroRowQueryInBatchCountsAsFullyReleased) {
  // A query with an empty result set is vacuously compliant: its
  // released_fraction is 1.0 by convention and it contributes nothing to the
  // shared improvement problem, even when a sibling query is blocked.
  QueryRequest blocked{kCandidateQuery, "mary", "investment", 1.0};
  QueryRequest empty{"SELECT * FROM proposal WHERE company = 'Nobody'", "mary",
                     "investment", 1.0};
  std::vector<QueryOutcome> outcomes = *engine_->SubmitBatch({blocked, empty});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].proposal.needed);
  EXPECT_TRUE(outcomes[1].intermediate.rows.empty());
  EXPECT_DOUBLE_EQ(outcomes[1].released_fraction, 1.0);
  EXPECT_FALSE(outcomes[1].proposal.needed);
}

TEST_F(PcqeEngineTest, SubmitIsCallableThroughConstEngine) {
  // Submission is read-only by contract: a const engine reference suffices.
  // This is what lets QueryService run Submit concurrently from many worker
  // threads while serializing only AcceptProposal.
  const PcqeEngine& engine = *engine_;
  QueryOutcome outcome =
      *engine.Submit({kCandidateQuery, "sam", "analysis", 1.0});
  EXPECT_DOUBLE_EQ(outcome.released_fraction, 1.0);
  EXPECT_EQ(engine.catalog().confidence_version(), 0u);

  std::vector<QueryOutcome> batch = *engine.SubmitBatch(
      {{kCandidateQuery, "sam", "analysis", 1.0},
       {kCandidateQuery, "mary", "investment", 0.0}});
  EXPECT_EQ(batch.size(), 2u);
}

TEST_F(PcqeEngineTest, TableScopedPolicyGatesOnlyMatchingQueries) {
  // A strict policy scoped to CompanyInfo: the Candidate query touches it
  // (via the join), a Proposal-only query does not.
  ASSERT_TRUE(engine_->policies()
                  ->AddPolicy(*engine_->roles(),
                              {"Secretary", "analysis", 0.9, "companyinfo"})
                  .ok());
  QueryOutcome joined = *engine_->Submit({kCandidateQuery, "sam", "analysis", 0.0});
  EXPECT_DOUBLE_EQ(joined.policy.threshold, 0.9);
  EXPECT_TRUE(joined.released.empty());

  QueryOutcome proposal_only = *engine_->Submit(
      {"SELECT company FROM proposal WHERE funding < 1000000", "sam", "analysis", 0.0});
  EXPECT_DOUBLE_EQ(proposal_only.policy.threshold, 0.05);  // P1 only
  EXPECT_EQ(proposal_only.released.size(), 2u);
  EXPECT_EQ(proposal_only.intermediate.tables,
            (std::vector<std::string>{"Proposal"}));
}

TEST_F(PcqeEngineTest, NonMonotoneExceptQueryStillGetsAProposal) {
  // EXCEPT introduces negated lineage; the exact B&B refuses non-monotone
  // problems, so SolverKind::kAuto must route to the greedy-based path and
  // still produce a valid plan.
  //
  // "Companies with a sub-million proposal that are NOT high earners":
  // BlueSky (income 120K < 2e5 threshold is in the subtrahend? income >
  // 200000 excludes AlphaTech only), so BlueSky survives with lineage
  // (t02|t03) AND NOT(...) — here the subtrahend has no BlueSky row, but we
  // force a negation by subtracting low earners from proposal companies.
  const char* except_query =
      "SELECT company FROM proposal WHERE funding < 1000000 "
      "EXCEPT SELECT company FROM companyinfo WHERE income > 1000000";
  QueryOutcome outcome =
      *engine_->Submit({except_query, "mary", "investment", 1.0});
  ASSERT_EQ(outcome.intermediate.rows.size(), 1u);
  // p = 0.58 > 0.06: released without improvement (sanity).
  EXPECT_EQ(outcome.released.size(), 1u);

  // Now a variant whose subtrahend genuinely matches, introducing NOT into
  // the lineage: BlueSky survives with (t02|t03) & t13 & ¬t13 under the
  // independence semantics, confidence 0.58 · 0.1 · 0.9 = 0.0522 < 0.06.
  const char* blocked_query =
      "SELECT ci.company FROM "
      "(SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
      "JOIN companyinfo AS ci ON c.company = ci.company "
      "EXCEPT SELECT company FROM companyinfo WHERE income < 130000";
  QueryOutcome blocked = *engine_->Submit({blocked_query, "mary", "investment", 1.0});
  ASSERT_EQ(blocked.intermediate.rows.size(), 1u);
  EXPECT_NEAR(blocked.intermediate.rows[0].confidence, 0.58 * 0.1 * 0.9, 1e-12);
  EXPECT_TRUE(blocked.released.empty());  // 0.0522 < 0.06
  ASSERT_TRUE(blocked.proposal.needed);
  EXPECT_TRUE(blocked.proposal.feasible);
  // The greedy-family algorithms handled it (no exact B&B on non-monotone).
  EXPECT_NE(blocked.proposal.algorithm, "heuristic");

  ASSERT_TRUE(engine_->AcceptProposal(blocked.proposal).ok());
  QueryOutcome after = *engine_->Submit({blocked_query, "mary", "investment", 1.0});
  EXPECT_EQ(after.released.size(), 1u);
}

TEST_F(PcqeEngineTest, AggregateQueryThroughPolicyPipeline) {
  // COUNT over the low-confidence join: group lineage is the conjunction of
  // member lineages, so the aggregate confidence is low and policy-gated.
  const char* agg_query =
      "SELECT c.company, COUNT(*) AS n FROM "
      "(SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
      "JOIN companyinfo AS ci ON c.company = ci.company GROUP BY c.company";
  QueryOutcome outcome = *engine_->Submit({agg_query, "mary", "investment", 1.0});
  ASSERT_EQ(outcome.intermediate.rows.size(), 1u);
  EXPECT_NEAR(outcome.intermediate.rows[0].confidence, 0.058, 1e-12);
  EXPECT_TRUE(outcome.released.empty());
  ASSERT_TRUE(outcome.proposal.needed);
  ASSERT_TRUE(engine_->AcceptProposal(outcome.proposal).ok());
  QueryOutcome after = *engine_->Submit({agg_query, "mary", "investment", 1.0});
  EXPECT_EQ(after.released.size(), 1u);
}

}  // namespace
}  // namespace pcqe
