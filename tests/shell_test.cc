// Tests for the interactive shell's command dispatcher.

#include "tools/shell.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace pcqe {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  /// Feeds a line; returns the output it produced.
  std::string Feed(const std::string& line) {
    out_.str("");
    alive_ = shell_.HandleLine(line);
    return out_.str();
  }

  std::ostringstream out_;
  Shell shell_{&out_};
  bool alive_ = true;
};

TEST_F(ShellTest, QuitEndsSession) {
  Feed(".quit");
  EXPECT_FALSE(alive_);
}

TEST_F(ShellTest, HelpListsCommands) {
  std::string help = Feed(".help");
  EXPECT_NE(help.find(".load"), std::string::npos);
  EXPECT_NE(help.find(".policy add"), std::string::npos);
}

TEST_F(ShellTest, UnknownCommandReported) {
  EXPECT_NE(Feed(".bogus").find("unknown command"), std::string::npos);
}

TEST_F(ShellTest, EmptyLinesIgnored) {
  EXPECT_EQ(Feed("   "), "");
  EXPECT_TRUE(alive_);
}

TEST_F(ShellTest, LoadAndQueryCsv) {
  std::string path = ::testing::TempDir() + "/shell_test.csv";
  {
    std::ofstream f(path);
    f << "site,reading,conf\nnorth,42,0.9\nsouth,17,0.4\n";
  }
  std::string loaded = Feed(".load sensors " + path + " conf");
  EXPECT_NE(loaded.find("loaded 2 rows"), std::string::npos);

  EXPECT_NE(Feed(".tables").find("sensors (2 rows)"), std::string::npos);
  EXPECT_NE(Feed(".schema sensors").find("reading"), std::string::npos);

  // Raw query (no session user): all rows with confidences.
  std::string result = Feed("SELECT site FROM sensors;");
  EXPECT_NE(result.find("north"), std::string::npos);
  EXPECT_NE(result.find("no policy applied"), std::string::npos);
}

TEST_F(ShellTest, MultiLineSqlAccumulates) {
  std::string path = ::testing::TempDir() + "/shell_test2.csv";
  {
    std::ofstream f(path);
    f << "x\n1\n";
  }
  Feed(".load t " + path);
  EXPECT_EQ(Feed("SELECT x"), "");  // incomplete: buffered
  EXPECT_TRUE(shell_.in_statement());
  std::string result = Feed("FROM t;");
  EXPECT_FALSE(shell_.in_statement());
  EXPECT_NE(result.find("1 row(s)"), std::string::npos);
}

TEST_F(ShellTest, FullPolicyWorkflow) {
  std::string path = ::testing::TempDir() + "/shell_test3.csv";
  {
    std::ofstream f(path);
    f << "site,reading,conf\nnorth,42,0.9\nsouth,17,0.4\n";
  }
  Feed(".load sensors " + path + " conf");
  EXPECT_NE(Feed(".role add Analyst").find("added"), std::string::npos);
  EXPECT_NE(Feed(".user add alice").find("added"), std::string::npos);
  EXPECT_NE(Feed(".role grant alice Analyst").find("granted"), std::string::npos);
  EXPECT_NE(Feed(".policy add Analyst reporting 0.5").find("added"), std::string::npos);
  EXPECT_NE(Feed(".policy list").find("<Analyst, reporting, 0.5>"), std::string::npos);
  Feed(".user use alice");
  Feed(".purpose reporting");
  Feed(".fraction 1.0");

  std::string result = Feed("SELECT site, reading FROM sensors;");
  EXPECT_NE(result.find("1 of 2 row(s) released"), std::string::npos);
  EXPECT_NE(result.find("improvement available"), std::string::npos);

  std::string proposal = Feed(".proposal");
  EXPECT_NE(proposal.find("total cost"), std::string::npos);

  EXPECT_NE(Feed(".accept").find("applied"), std::string::npos);
  std::string after = Feed("SELECT site, reading FROM sensors;");
  EXPECT_NE(after.find("2 of 2 row(s) released"), std::string::npos);
  // Proposal consumed.
  EXPECT_NE(Feed(".accept").find("no pending proposal"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAreShownNotFatal) {
  EXPECT_NE(Feed(".schema ghost").find("not_found"), std::string::npos);
  EXPECT_NE(Feed(".load t /nonexistent.csv").find("not_found"), std::string::npos);
  EXPECT_NE(Feed("SELECT broken FROM nowhere;").find("bind_error"), std::string::npos);
  EXPECT_NE(Feed(".user use ghost").find("unknown user"), std::string::npos);
  EXPECT_NE(Feed(".role grant ghost Role").find("not_found"), std::string::npos);
  EXPECT_TRUE(alive_);
}

TEST_F(ShellTest, UsageMessagesForBadArity) {
  EXPECT_NE(Feed(".schema").find("usage:"), std::string::npos);
  EXPECT_NE(Feed(".load onlyone").find("usage:"), std::string::npos);
  EXPECT_NE(Feed(".policy add Role").find("usage:"), std::string::npos);
  EXPECT_NE(Feed(".fraction").find("usage:"), std::string::npos);
}

TEST_F(ShellTest, SaveAndOpenDatabase) {
  std::string csv_path = ::testing::TempDir() + "/shell_db.csv";
  std::string db_dir = ::testing::TempDir() + "/shell_dbdir";
  std::filesystem::remove_all(db_dir);
  std::filesystem::create_directories(db_dir);
  {
    std::ofstream f(csv_path);
    f << "x,conf\n5,0.7\n";
  }
  Feed(".load nums " + csv_path + " conf");
  EXPECT_NE(Feed(".savedb " + db_dir).find("database saved"), std::string::npos);

  // A fresh shell restores the table with its confidence.
  std::ostringstream out2;
  Shell shell2(&out2);
  shell2.HandleLine(".opendb " + db_dir);
  EXPECT_NE(out2.str().find("database loaded"), std::string::npos);
  out2.str("");
  shell2.HandleLine("SELECT x FROM nums;");
  EXPECT_NE(out2.str().find("0.7"), std::string::npos);
}

TEST_F(ShellTest, WhyExplainsRowInfluence) {
  std::string path = ::testing::TempDir() + "/shell_why.csv";
  {
    std::ofstream f(path);
    f << "site,reading,conf\nnorth,42,0.9\nsouth,17,0.4\n";
  }
  EXPECT_NE(Feed(".why 1").find("no query result"), std::string::npos);
  Feed(".load sensors " + path + " conf");
  Feed("SELECT site FROM sensors;");
  std::string why = Feed(".why 2");
  EXPECT_NE(why.find("confidence 0.4"), std::string::npos);
  EXPECT_NE(why.find("sensitivity 1"), std::string::npos);  // single-var lineage
  EXPECT_NE(why.find("headroom 0.6"), std::string::npos);
  EXPECT_NE(Feed(".why 9").find("out of range"), std::string::npos);
  EXPECT_NE(Feed(".why").find("usage:"), std::string::npos);
}

TEST_F(ShellTest, ExplainPrintsPlan) {
  std::string path = ::testing::TempDir() + "/shell_explain.csv";
  {
    std::ofstream f(path);
    f << "x\n1\n";
  }
  Feed(".load t " + path);
  std::string plan = Feed(".explain SELECT x FROM t WHERE x > 0;");
  EXPECT_NE(plan.find("Scan t"), std::string::npos);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(Feed(".explain").find("usage:"), std::string::npos);
  EXPECT_NE(Feed(".explain SELEC nope").find("parse_error"), std::string::npos);
}

TEST_F(ShellTest, AccessConfigRoundTrip) {
  std::string path = ::testing::TempDir() + "/shell_access.conf";
  Feed(".role add Analyst");
  Feed(".user add alice");
  Feed(".role grant alice Analyst");
  Feed(".policy add Analyst reporting 0.5");
  EXPECT_NE(Feed(".saveconfig " + path).find("saved"), std::string::npos);

  std::ostringstream out2;
  Shell shell2(&out2);
  shell2.HandleLine(".loadconfig " + path);
  EXPECT_NE(out2.str().find("loaded"), std::string::npos);
  out2.str("");
  shell2.HandleLine(".policy list");
  EXPECT_NE(out2.str().find("<Analyst, reporting, 0.5>"), std::string::npos);
}

TEST_F(ShellTest, ServeSessionWorkflow) {
  std::string path = ::testing::TempDir() + "/shell_serve.csv";
  {
    std::ofstream f(path);
    f << "site,reading,conf\nnorth,42,0.9\nsouth,17,0.4\n";
  }
  Feed(".load sensors " + path + " conf");
  Feed(".role add Analyst");
  Feed(".user add alice");
  Feed(".role grant alice Analyst");
  Feed(".policy add Analyst reporting 0.5");

  // A session requires a running service.
  EXPECT_NE(Feed(".session alice reporting").find("no service running"),
            std::string::npos);
  EXPECT_NE(Feed(".stats").find("no service running"), std::string::npos);

  std::string serving = Feed(".serve 2");
  EXPECT_NE(serving.find("serving with 2 worker(s)"), std::string::npos);
  EXPECT_NE(Feed(".serve").find("already serving"), std::string::npos);
  EXPECT_TRUE(shell_.service() != nullptr);
  EXPECT_FALSE(shell_.in_session());

  // Unknown users cannot open sessions; known ones pin role set + threshold.
  EXPECT_NE(Feed(".session ghost reporting").find("not_found"), std::string::npos);
  std::string opened = Feed(".session alice reporting");
  EXPECT_NE(opened.find("alice/reporting"), std::string::npos);
  EXPECT_NE(opened.find("beta=0.5"), std::string::npos);
  EXPECT_TRUE(shell_.in_session());

  // SQL is routed through the service and filtered by the session policy.
  std::string result = Feed("SELECT site, reading FROM sensors;");
  EXPECT_NE(result.find("1 of 2 row(s) released"), std::string::npos);
  EXPECT_NE(result.find("via service"), std::string::npos);

  // The same query again is a cache hit; .stats reports the counters.
  Feed("SELECT site, reading FROM sensors;");
  std::string stats = Feed(".stats");
  EXPECT_NE(stats.find("2 served"), std::string::npos);
  EXPECT_NE(stats.find("cache: 1 hits"), std::string::npos);

  // .accept routes through the service so the catalog write is serialized
  // against in-flight queries, and the cache is invalidated by version bump.
  Feed(".fraction 1.0");
  Feed("SELECT site, reading FROM sensors;");
  EXPECT_NE(Feed(".accept").find("applied"), std::string::npos);
  std::string after = Feed("SELECT site, reading FROM sensors;");
  EXPECT_NE(after.find("2 of 2 row(s) released"), std::string::npos);

  // Dropping the session reverts to direct engine submission.
  EXPECT_NE(Feed(".session off").find("session closed"), std::string::npos);
  EXPECT_FALSE(shell_.in_session());
  std::string direct = Feed("SELECT site, reading FROM sensors;");
  EXPECT_EQ(direct.find("via service"), std::string::npos);
}

TEST_F(ShellTest, SaveExportsCsv) {
  std::string in_path = ::testing::TempDir() + "/shell_save_in.csv";
  std::string out_path = ::testing::TempDir() + "/shell_save_out.csv";
  {
    std::ofstream f(in_path);
    f << "x\n7\n";
  }
  Feed(".load t " + in_path);
  EXPECT_NE(Feed(".save t " + out_path).find("saved"), std::string::npos);
  std::ifstream saved(out_path);
  std::string header;
  std::getline(saved, header);
  EXPECT_EQ(header, "x,confidence");
}

}  // namespace
}  // namespace pcqe
