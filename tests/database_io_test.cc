// Tests for whole-database save/load and cost-function serialization.

#include "relational/database_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cost/cost_function.h"

namespace pcqe {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CostSerializationTest, RoundTripsEveryFamily) {
  std::vector<CostFunctionPtr> functions = {
      *MakeLinearCost(2.5),          *MakePolynomialCost(1.5, 3.0),
      *MakeExponentialCost(2.0, 3.5), *MakeLogarithmicCost(4.0, 12.0),
      *MakeStepCost(2.0, 0.05),
  };
  for (const CostFunctionPtr& f : functions) {
    auto parsed = ParseCostFunction(f->ToString());
    ASSERT_TRUE(parsed.ok()) << f->ToString() << ": " << parsed.status().ToString();
    EXPECT_EQ((*parsed)->family(), f->family());
    for (double p : {0.0, 0.1, 0.37, 0.9, 1.0}) {
      EXPECT_NEAR((*parsed)->Level(p), f->Level(p), 1e-9) << f->ToString();
    }
  }
}

TEST(CostSerializationTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseCostFunction("").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("linear").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("linear(a=2").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("linear(b=2)").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("linear(a=x)").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("mystery(a=2)").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("exponential(a=2)").status().IsParseError());
  EXPECT_TRUE(ParseCostFunction("linear(a)").status().IsParseError());
  // Parameters out of range surface the factory's validation.
  EXPECT_TRUE(ParseCostFunction("linear(a=-1)").status().IsInvalidArgument());
}

TEST(DatabaseIoTest, RoundTripsTablesRowsAndAnnotations) {
  Catalog catalog;
  Table* t = *catalog.CreateTable(
      "mixed", Schema({{"name", DataType::kString, ""},
                       {"n", DataType::kInt64, ""},
                       {"x", DataType::kDouble, ""},
                       {"flag", DataType::kBool, ""}}));
  ASSERT_TRUE(t->Insert({Value::String("quote\" and, comma"), Value::Int(-7),
                         Value::Double(0.1234567890123456), Value::Bool(true)},
                        0.37, *MakeExponentialCost(2.0, 3.0), 0.9)
                  .ok());
  ASSERT_TRUE(
      t->Insert({Value::Null(), Value::Null(), Value::Null(), Value::Null()}, 0.5)
          .ok());
  ASSERT_TRUE(catalog.CreateTable("empty", Schema({{"a", DataType::kInt64, ""}})).ok());

  std::string dir = FreshDir("dbio_roundtrip");
  ASSERT_TRUE(SaveDatabase(catalog, dir).ok());

  Catalog loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  EXPECT_EQ(loaded.TableNames(), catalog.TableNames());

  const Table* lt = *loaded.GetTable("mixed");
  ASSERT_EQ(lt->num_tuples(), 2u);
  EXPECT_EQ(lt->tuple(0).value(0), Value::String("quote\" and, comma"));
  EXPECT_EQ(lt->tuple(0).value(1), Value::Int(-7));
  EXPECT_DOUBLE_EQ(*lt->tuple(0).value(2).AsDouble(), 0.1234567890123456);
  EXPECT_EQ(lt->tuple(0).value(3), Value::Bool(true));
  EXPECT_DOUBLE_EQ(lt->tuple(0).confidence(), 0.37);
  EXPECT_DOUBLE_EQ(lt->tuple(0).max_confidence(), 0.9);
  EXPECT_EQ(lt->tuple(0).cost_function()->family(), CostFamily::kExponential);
  EXPECT_NEAR(lt->tuple(0).cost_function()->Level(0.5),
              t->tuple(0).cost_function()->Level(0.5), 1e-12);
  EXPECT_TRUE(lt->tuple(1).value(0).is_null());

  const Table* le = *loaded.GetTable("empty");
  EXPECT_EQ(le->num_tuples(), 0u);
  EXPECT_EQ(le->schema().column(0).type, DataType::kInt64);
}

TEST(DatabaseIoTest, SchemaTypesAreAuthoritative) {
  // A column whose only value "123" would infer as BIGINT must stay VARCHAR.
  Catalog catalog;
  Table* t =
      *catalog.CreateTable("codes", Schema({{"code", DataType::kString, ""}}));
  ASSERT_TRUE(t->Insert({Value::String("123")}, 0.5).ok());
  std::string dir = FreshDir("dbio_types");
  ASSERT_TRUE(SaveDatabase(catalog, dir).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  EXPECT_EQ((*loaded.GetTable("codes"))->tuple(0).value(0), Value::String("123"));
}

TEST(DatabaseIoTest, MissingManifestIsNotFound) {
  Catalog catalog;
  EXPECT_TRUE(LoadDatabase(FreshDir("dbio_missing"), &catalog).IsNotFound());
}

TEST(DatabaseIoTest, CorruptRowsReported) {
  std::string dir = FreshDir("dbio_corrupt");
  {
    std::ofstream(dir + "/manifest.pcqe") << "t\n";
    std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
    std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                  << "oops,0.5,1,linear(a=1)\n";
  }
  Catalog catalog;
  Status s = LoadDatabase(dir, &catalog);
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("BIGINT"), std::string::npos);
}

TEST(DatabaseIoTest, WrongArityReported) {
  std::string dir = FreshDir("dbio_arity");
  {
    std::ofstream(dir + "/manifest.pcqe") << "t\n";
    std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
    std::ofstream(dir + "/t.csv") << "n,__confidence\n1,0.5\n";
  }
  Catalog catalog;
  EXPECT_TRUE(LoadDatabase(dir, &catalog).IsParseError());
}

TEST(DatabaseIoTest, LoadIntoOccupiedCatalogDetectsCollision) {
  Catalog catalog;
  Table* t = *catalog.CreateTable("t", Schema({{"a", DataType::kInt64, ""}}));
  ASSERT_TRUE(t->Insert({Value::Int(1)}, 0.5).ok());
  std::string dir = FreshDir("dbio_collision");
  ASSERT_TRUE(SaveDatabase(catalog, dir).ok());
  EXPECT_TRUE(LoadDatabase(dir, &catalog).IsAlreadyExists());
}

TEST(DatabaseIoTest, QueriesWorkAfterReload) {
  Catalog catalog;
  Table* t = *catalog.CreateTable(
      "p", Schema({{"company", DataType::kString, ""},
                   {"funding", DataType::kDouble, ""}}));
  ASSERT_TRUE(
      t->Insert({Value::String("BlueSky"), Value::Double(5e5)}, 0.4).ok());
  std::string dir = FreshDir("dbio_query");
  ASSERT_TRUE(SaveDatabase(catalog, dir).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  // (Exercised through the query engine in engine_integration_test-style
  // usage; here we just verify confidences flowed through.)
  EXPECT_DOUBLE_EQ((*loaded.GetTable("p"))->tuple(0).confidence(), 0.4);
}

TEST(DatabaseIoTest, RejectsNonNumericConfidenceCells) {
  // Regression: these cells used to go through an unchecked strtod, so a
  // garbage confidence silently loaded as 0.0 and every row read as fully
  // blocked. They must be rejected loudly instead.
  std::string dir = FreshDir("dbio_bad_conf");
  {
    std::ofstream(dir + "/manifest.pcqe") << "t\n";
    std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
    std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                  << "1,0.5x,1,linear(a=1)\n";
  }
  Catalog catalog;
  Status s = LoadDatabase(dir, &catalog);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("__confidence"), std::string::npos) << s.ToString();

  std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                << "1,0.5,,linear(a=1)\n";
  Catalog catalog2;
  Status empty_cell = LoadDatabase(dir, &catalog2);
  EXPECT_TRUE(empty_cell.IsInvalidArgument()) << empty_cell.ToString();
  EXPECT_NE(empty_cell.message().find("__max_confidence"), std::string::npos);
}

TEST(DatabaseIoTest, RejectsConfidenceOutsideUnitInterval) {
  std::string dir = FreshDir("dbio_conf_range");
  {
    std::ofstream(dir + "/manifest.pcqe") << "t\n";
    std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
    std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                  << "1,1.5,1,linear(a=1)\n";
  }
  Catalog catalog;
  EXPECT_TRUE(LoadDatabase(dir, &catalog).IsInvalidArgument());

  std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                << "1,0.5,-0.25,linear(a=1)\n";
  Catalog catalog2;
  EXPECT_TRUE(LoadDatabase(dir, &catalog2).IsInvalidArgument());
}

TEST(DatabaseIoTest, HeaderRoundTripsConfidenceVersionAndTableIds) {
  Catalog catalog;
  Table* a = *catalog.CreateTable("a", Schema({{"x", DataType::kInt64, ""}}));
  Table* b = *catalog.CreateTable("b", Schema({{"y", DataType::kInt64, ""}}));
  BaseTupleId id_a = *a->Insert({Value::Int(1)}, 0.3);
  BaseTupleId id_b = *b->Insert({Value::Int(2)}, 0.4);
  ASSERT_TRUE(catalog.SetConfidence(id_a, 0.5).ok());
  ASSERT_TRUE(catalog.SetConfidence(id_b, 0.6).ok());
  ASSERT_TRUE(catalog.SetConfidence(id_a, 0.7).ok());
  ASSERT_EQ(catalog.confidence_version(), 3u);

  std::string dir = FreshDir("dbio_header");
  ASSERT_TRUE(SaveDatabase(catalog, dir).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  // The version counter survives, so version-keyed caches stay sound.
  EXPECT_EQ(loaded.confidence_version(), 3u);
  // Tuple ids are reproduced exactly: persisted BaseTupleIds (WAL actions,
  // lineage references) keep resolving to the same tuples.
  EXPECT_DOUBLE_EQ((*loaded.FindTuple(id_a))->confidence(), 0.7);
  EXPECT_DOUBLE_EQ((*loaded.FindTuple(id_b))->confidence(), 0.6);
  EXPECT_EQ((*loaded.GetTable("a"))->table_id(), a->table_id());
  EXPECT_EQ((*loaded.GetTable("b"))->table_id(), b->table_id());
  // Fresh table ids continue past the restored ones (no aliasing).
  Table* c = *loaded.CreateTable("c", Schema({{"z", DataType::kInt64, ""}}));
  EXPECT_GT(c->table_id(), b->table_id());
}

TEST(DatabaseIoTest, RejectsMalformedHeaders) {
  std::string dir = FreshDir("dbio_bad_header");
  std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
  std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n";
  struct Case {
    const char* manifest;
    bool invalid_argument;  // else: parse error
  };
  const Case cases[] = {
      {"PCQE_DB 3\nconfidence_version 0\ntable 1 t\n", true},
      {"PCQE_DB x\nconfidence_version 0\ntable 1 t\n", true},
      {"PCQE_DB 2\n", true},
      {"PCQE_DB 2\nconfidence_version x\ntable 1 t\n", true},
      {"PCQE_DB 2\nconfidence_version 0\nt\n", false},
      {"PCQE_DB 2\nconfidence_version 0\ntable 0 t\n", true},
      {"PCQE_DB 2\nconfidence_version 0\ntable 1\n", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.manifest);
    std::ofstream(dir + "/manifest.pcqe") << c.manifest;
    Catalog catalog;
    Status s = LoadDatabase(dir, &catalog);
    if (c.invalid_argument) {
      EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
    } else {
      EXPECT_TRUE(s.IsParseError()) << s.ToString();
    }
  }
}

TEST(DatabaseIoTest, LegacyHeaderlessManifestStillLoads) {
  std::string dir = FreshDir("dbio_legacy");
  {
    std::ofstream(dir + "/manifest.pcqe") << "t\n";
    std::ofstream(dir + "/t.schema") << "n\tBIGINT\n";
    std::ofstream(dir + "/t.csv") << "n,__confidence,__max_confidence,__cost\n"
                                  << "1,0.5,1,linear(a=1)\n";
  }
  Catalog catalog;
  ASSERT_TRUE(LoadDatabase(dir, &catalog).ok());
  const Table* t = *catalog.GetTable("t");
  EXPECT_EQ(t->num_tuples(), 1u);
  EXPECT_GT(t->table_id(), 0u);       // fresh id assigned
  EXPECT_EQ(catalog.confidence_version(), 0u);  // no version to restore
}

}  // namespace
}  // namespace pcqe
