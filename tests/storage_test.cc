// Unit tests for the durable-catalog storage layer: WAL framing and
// torn-tail semantics, manifest round-trip, checkpoint rotation, and the
// LogAccept rollback contract. Crash-point recovery scenarios (arming the
// storage.* fault sites end-to-end through the engine) live in
// recovery_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "relational/catalog.h"
#include "storage/manifest.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace pcqe {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

/// Reads the raw bytes of `path`.
std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WalRecord VersionRecord(uint64_t lsn, uint64_t version) {
  WalRecord record;
  record.lsn = lsn;
  record.type = WalRecordType::kVersionSet;
  record.version = version;
  return record;
}

WalRecord CommitRecord(uint64_t lsn, uint64_t version,
                       std::vector<WalAction> actions) {
  WalRecord record;
  record.lsn = lsn;
  record.type = WalRecordType::kCommit;
  record.version = version;
  record.actions = std::move(actions);
  return record;
}

class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(StorageTest, WalRoundTripsRecordsExactly) {
  std::string path = FreshDir("wal_round_trip") + "/wal.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(VersionRecord(1, 0)).ok());
  ASSERT_TRUE((*writer)
                  ->Append(CommitRecord(2, 2,
                                        {{0x100000001ull, 0.25, 0.5, 3.75},
                                         {0x100000002ull, 0.5, 0.9, 12.5}}))
                  .ok());
  ASSERT_TRUE((*writer)->Append(CommitRecord(3, 3, {{42, 0.0, 1.0, 0.125}})).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->buffered(), 0u);
  EXPECT_EQ((*writer)->file_size(), FileSize(path));

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->torn_bytes, 0u);
  EXPECT_EQ(read->valid_bytes, FileSize(path));
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kVersionSet);
  EXPECT_EQ(read->records[0].version, 0u);
  EXPECT_TRUE(read->records[0].actions.empty());
  const WalRecord& commit = read->records[1];
  EXPECT_EQ(commit.lsn, 2u);
  EXPECT_EQ(commit.type, WalRecordType::kCommit);
  EXPECT_EQ(commit.version, 2u);
  ASSERT_EQ(commit.actions.size(), 2u);
  EXPECT_EQ(commit.actions[0].tuple, 0x100000001ull);
  EXPECT_EQ(commit.actions[0].from, 0.25);  // bit-exact round trip
  EXPECT_EQ(commit.actions[0].to, 0.5);
  EXPECT_EQ(commit.actions[0].cost, 3.75);
  EXPECT_EQ(commit.actions[1].tuple, 0x100000002ull);
  EXPECT_EQ(read->records[2].actions.size(), 1u);
}

TEST_F(StorageTest, WalAppendIsNotDurableUntilSync) {
  std::string path = FreshDir("wal_buffered") + "/wal.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(VersionRecord(1, 0)).ok());
  EXPECT_GT((*writer)->buffered(), 0u);
  EXPECT_EQ(FileSize(path), 8u);  // magic only

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());

  ASSERT_TRUE((*writer)->Sync().ok());
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

TEST_F(StorageTest, TornTailIsSkippedWithoutLosingEarlierRecords) {
  std::string path = FreshDir("wal_torn") + "/wal.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(VersionRecord(1, 0)).ok());
  ASSERT_TRUE((*writer)->Append(CommitRecord(2, 1, {{7, 0.1, 0.2, 1.0}})).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  uint64_t intact = (*writer)->file_size();
  writer->reset();  // close before hand-corrupting

  // Case 1: a short frame header (crash mid-header write).
  std::string bytes = Slurp(path);
  Spit(path, bytes + std::string(3, '\x07'));
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->valid_bytes, intact);
  EXPECT_EQ(read->torn_bytes, 3u);

  // Case 2: a full header whose payload never made it.
  Spit(path, bytes + std::string("\x40\x00\x00\x00\xde\xad\xbe\xef", 8));
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->torn_bytes, 8u);

  // Case 3: garbage length field (not even a plausible frame).
  Spit(path, bytes + std::string(12, '\xff'));
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->valid_bytes, intact);
}

TEST_F(StorageTest, CorruptedCrcDropsTailRecordOnly) {
  std::string path = FreshDir("wal_crc") + "/wal.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(VersionRecord(1, 0)).ok());
  ASSERT_TRUE((*writer)->Append(CommitRecord(2, 1, {{7, 0.1, 0.2, 1.0}})).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  // Flip the last payload byte: the final record's CRC no longer matches,
  // so it reads as a torn tail; the first record survives.
  std::string bytes = Slurp(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  Spit(path, bytes);
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_GT(read->torn_bytes, 0u);
}

TEST_F(StorageTest, BadMagicIsHardCorruption) {
  std::string dir = FreshDir("wal_magic");
  Spit(dir + "/wal.log", "NOTAWAL1ignored");
  EXPECT_TRUE(ReadWal(dir + "/wal.log").status().IsInternal());
  Spit(dir + "/short.log", "PCQ");
  EXPECT_TRUE(ReadWal(dir + "/short.log").status().IsInternal());
  EXPECT_TRUE(ReadWal(dir + "/absent.log").status().IsNotFound());
}

TEST_F(StorageTest, WalCrc32MatchesKnownVectors) {
  // IEEE CRC32 check value for "123456789".
  EXPECT_EQ(WalCrc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(WalCrc32("", 0), 0u);
}

TEST_F(StorageTest, ResumeTruncatesTornTailAndContinues) {
  std::string path = FreshDir("wal_resume") + "/wal.log";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(VersionRecord(1, 0)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn!";
  }

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->torn_bytes, 5u);
  auto resumed = WalWriter::Resume(path, read->valid_bytes);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(FileSize(path), read->valid_bytes);  // tail truncated away
  ASSERT_TRUE((*resumed)->Append(CommitRecord(2, 1, {{7, 0.1, 0.2, 1.0}})).ok());
  ASSERT_TRUE((*resumed)->Sync().ok());
  resumed->reset();

  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].lsn, 2u);
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(StorageTest, ManifestRoundTripsAndRejectsMalformed) {
  std::string dir = FreshDir("manifest");
  EXPECT_FALSE(ManifestExists(dir));
  DurabilityManifest manifest;
  manifest.checkpoint = "checkpoint-000007";
  manifest.wal = "wal-000007.log";
  manifest.truncate_lsn = 41;
  ASSERT_TRUE(SaveManifest(dir, manifest).ok());
  EXPECT_TRUE(ManifestExists(dir));
  auto loaded = LoadManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->checkpoint, "checkpoint-000007");
  EXPECT_EQ(loaded->wal, "wal-000007.log");
  EXPECT_EQ(loaded->truncate_lsn, 41u);

  const char* bad[] = {
      "",
      "PCQE_MANIFEST 2\ncheckpoint a\nwal b\ntruncate_lsn 1\n",
      "PCQE_MANIFEST 1\ncheckpoint a\nwal b\n",
      "PCQE_MANIFEST 1\ncheckpoint a\nwal b\ntruncate_lsn x\n",
      "PCQE_MANIFEST 1\nwal b\ncheckpoint a\ntruncate_lsn 1\n",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    Spit(dir + "/" + kManifestFile, text);
    EXPECT_TRUE(LoadManifest(dir).status().IsInvalidArgument());
  }
  EXPECT_TRUE(LoadManifest(FreshDir("manifest_absent")).status().IsNotFound());
}

/// Fills `catalog` with one table (headroom for improvements) through the
/// catalog so tuple ids carry a real table id; returns the tuple ids.
std::vector<BaseTupleId> Populate(Catalog* catalog) {
  Table* table =
      *catalog->CreateTable("t", Schema({{"x", DataType::kDouble, ""}}));
  std::vector<BaseTupleId> ids;
  ids.push_back(*table->Insert({Value::Double(1.0)}, 0.2));
  ids.push_back(*table->Insert({Value::Double(2.0)}, 0.4));
  return ids;
}

TEST_F(StorageTest, OpenCreatesCheckpointAndLogAcceptAppends) {
  std::string dir = FreshDir("storage_open");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog).ok());
  ASSERT_TRUE(storage.open());

  StorageSnapshot snap = storage.snapshot();
  EXPECT_EQ(snap.checkpoints, 1u);
  EXPECT_EQ(snap.truncate_lsn, 1u);
  EXPECT_EQ(snap.next_lsn, 2u);
  EXPECT_TRUE(ManifestExists(dir));

  ASSERT_TRUE(storage
                  .LogAccept(catalog.confidence_version(),
                             {{ids[0], 0.2, 0.6, 4.0}})
                  .ok());
  snap = storage.snapshot();
  EXPECT_EQ(snap.wal_appends, 1u);
  EXPECT_EQ(snap.syncs, 1u);
  EXPECT_EQ(snap.next_lsn, 3u);
  EXPECT_GT(snap.wal_bytes, 0u);
  EXPECT_EQ(snap.wal_buffered_bytes, 0u);

  auto read = ReadWal(dir + "/" + snap.wal);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kVersionSet);
  EXPECT_EQ(read->records[1].type, WalRecordType::kCommit);
  EXPECT_EQ(read->records[1].version, catalog.confidence_version() + 1);
}

TEST_F(StorageTest, SyncOffBuffersUntilCheckpoint) {
  std::string dir = FreshDir("storage_nosync");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(
      storage.Open({.dir = dir, .sync_each_commit = false}, &catalog).ok());
  ASSERT_TRUE(
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}})
          .ok());
  StorageSnapshot snap = storage.snapshot();
  EXPECT_EQ(snap.syncs, 0u);
  EXPECT_GT(snap.wal_buffered_bytes, 0u);
  // Not on disk yet: the durable file holds only the opening version record.
  auto read = ReadWal(dir + "/" + snap.wal);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);

  // A checkpoint rotates to a fresh segment; the buffered commit is
  // superseded by the snapshot itself.
  ASSERT_TRUE(catalog.SetConfidence(ids[0], 0.6).ok());
  ASSERT_TRUE(storage.Checkpoint(catalog).ok());
  snap = storage.snapshot();
  EXPECT_EQ(snap.wal_buffered_bytes, 0u);
  EXPECT_EQ(snap.checkpoints, 2u);
}

TEST_F(StorageTest, CheckpointRotatesSegmentsAndCleansOldFiles) {
  std::string dir = FreshDir("storage_rotate");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog).ok());
  StorageSnapshot before = storage.snapshot();

  ASSERT_TRUE(
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}})
          .ok());
  ASSERT_TRUE(catalog.SetConfidence(ids[0], 0.6).ok());
  ASSERT_TRUE(storage.Checkpoint(catalog).ok());

  StorageSnapshot after = storage.snapshot();
  EXPECT_NE(after.checkpoint, before.checkpoint);
  EXPECT_NE(after.wal, before.wal);
  EXPECT_EQ(after.truncate_lsn, 3u);  // version record after the commit
  // The superseded checkpoint and segment are gone.
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + before.checkpoint));
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + before.wal));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + after.checkpoint));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + after.wal));
}

TEST_F(StorageTest, LogAcceptRollsBackOnAppendFault) {
  std::string dir = FreshDir("storage_append_fault");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog).ok());
  StorageSnapshot before = storage.snapshot();

  FaultInjector::Global().Arm(fault_sites::kWalAppend, {});
  Status failed =
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}});
  ASSERT_FALSE(failed.ok());
  FaultInjector::Global().Disarm(fault_sites::kWalAppend);

  StorageSnapshot after = storage.snapshot();
  EXPECT_EQ(after.next_lsn, before.next_lsn);
  EXPECT_EQ(after.wal_appends, before.wal_appends);
  EXPECT_EQ(after.wal_buffered_bytes, 0u);
  EXPECT_EQ(after.wal_file_bytes, before.wal_file_bytes);

  // The writer is fully usable after the rollback.
  ASSERT_TRUE(
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}})
          .ok());
  auto read = ReadWal(dir + "/" + after.wal);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(StorageTest, LogAcceptRollsBackOnSyncFault) {
  std::string dir = FreshDir("storage_sync_fault");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog).ok());
  StorageSnapshot before = storage.snapshot();

  FaultInjector::Global().Arm(fault_sites::kWalSync, {});
  ASSERT_FALSE(
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}})
          .ok());
  FaultInjector::Global().Disarm(fault_sites::kWalSync);

  StorageSnapshot after = storage.snapshot();
  EXPECT_EQ(after.next_lsn, before.next_lsn);
  EXPECT_EQ(after.wal_buffered_bytes, 0u);
  // Nothing leaked to disk: the segment still reads back with only the
  // opening version record.
  auto read = ReadWal(dir + "/" + after.wal);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

TEST_F(StorageTest, LogAcceptRequiresOpenStorage) {
  StorageManager storage;
  EXPECT_TRUE(storage.LogAccept(0, {{1, 0.0, 0.5, 1.0}}).IsInternal());
  EXPECT_FALSE(storage.open());
  Catalog catalog;
  Populate(&catalog);
  EXPECT_TRUE(storage.Open({.dir = ""}, &catalog).IsInvalidArgument());
  EXPECT_TRUE(
      storage.Open({.dir = FreshDir("null_catalog")}, nullptr).IsInvalidArgument());
}

TEST_F(StorageTest, TelemetryCountersMirrorSnapshots) {
  std::string dir = FreshDir("storage_telemetry");
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  ASSERT_TRUE(storage.Open({.dir = dir}, &catalog).ok());
  ASSERT_TRUE(
      storage.LogAccept(catalog.confidence_version(), {{ids[0], 0.2, 0.6, 4.0}})
          .ok());

  // Attach after the fact: the counters are seeded with prior tallies.
  TelemetryRegistry registry;
  storage.AttachTelemetry(&registry);
  StorageSnapshot snap = storage.snapshot();
  EXPECT_EQ(registry.GetCounter("pcqe_storage_wal_appends_total", "")->value(),
            snap.wal_appends);
  EXPECT_EQ(registry.GetCounter("pcqe_storage_syncs_total", "")->value(),
            snap.syncs);
  EXPECT_EQ(registry.GetCounter("pcqe_storage_checkpoints_total", "")->value(),
            snap.checkpoints);

  ASSERT_TRUE(
      storage.LogAccept(catalog.confidence_version(), {{ids[1], 0.4, 0.7, 2.0}})
          .ok());
  EXPECT_EQ(registry.GetCounter("pcqe_storage_wal_appends_total", "")->value(),
            snap.wal_appends + 1);
}

}  // namespace
}  // namespace pcqe
