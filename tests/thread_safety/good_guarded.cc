// Positive fixture for the thread-safety compile gate: the annotation
// vocabulary used correctly, mirroring the production patterns — a
// class-internal Mutex with guarded fields, and the engine's shape of an
// externally visible SharedMutex exposed through a PCQE_RETURN_CAPABILITY
// accessor with PCQE_REQUIRES(_SHARED) methods. Must compile clean under
// clang -Wthread-safety -Wthread-safety-beta -Werror.
#include "common/annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    pcqe::MutexLock lock(mu_);
    balance_ += amount;
  }
  int Balance() const {
    pcqe::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable pcqe::Mutex mu_;
  int balance_ PCQE_GUARDED_BY(mu_) = 0;
};

class Catalog {
 public:
  pcqe::SharedMutex& mu() const PCQE_RETURN_CAPABILITY(mu_) { return mu_; }
  int Version() const PCQE_REQUIRES_SHARED(mu_) { return version_; }
  void Bump() PCQE_REQUIRES(mu_) { ++version_; }

 private:
  mutable pcqe::SharedMutex mu_;
  int version_ PCQE_GUARDED_BY(mu_) = 0;
};

int ReadCatalog(const Catalog& catalog) {
  pcqe::ReaderLock lock(catalog.mu());
  return catalog.Version();
}

void EditCatalog(Catalog& catalog) {
  pcqe::WriterLock lock(catalog.mu());
  catalog.Bump();
}

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  Catalog catalog;
  EditCatalog(catalog);
  return account.Balance() + ReadCatalog(catalog);
}
