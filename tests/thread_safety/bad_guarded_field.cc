// Negative fixture: a PCQE_GUARDED_BY field touched without holding its
// mutex. Expected clang diagnostic (fatal under -Werror):
//   writing variable 'balance_' requires holding mutex 'mu_'
//   [-Wthread-safety-analysis]
#include "common/annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BAD: mu_ not held
  }

 private:
  pcqe::Mutex mu_;
  int balance_ PCQE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
