// Negative fixture: calling a PCQE_REQUIRES method without holding the
// lock — the mistake the engine's catalog_mu() contract exists to catch.
// Expected clang diagnostic (fatal under -Werror):
//   calling function 'Bump' requires holding mutex 'catalog.mu_'
//   exclusively [-Wthread-safety-analysis]
#include "common/annotations.h"

namespace {

class Catalog {
 public:
  pcqe::Mutex& mu() PCQE_RETURN_CAPABILITY(mu_) { return mu_; }
  void Bump() PCQE_REQUIRES(mu_) { ++version_; }

 private:
  pcqe::Mutex mu_;
  int version_ PCQE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Catalog catalog;
  catalog.Bump();  // BAD: caller never acquired catalog.mu()
  return 0;
}
