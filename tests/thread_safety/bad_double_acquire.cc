// Negative fixture: acquiring the same mutex twice through two scoped
// guards — a guaranteed self-deadlock with pcqe::Mutex (std::mutex
// underneath, not recursive). Expected clang diagnostic (fatal under
// -Werror):
//   acquiring mutex 'mu' that is already held [-Wthread-safety-analysis]
#include "common/annotations.h"

int main() {
  pcqe::Mutex mu;
  pcqe::MutexLock outer(mu);
  pcqe::MutexLock inner(mu);  // BAD: mu is already held by this thread
  return 0;
}
