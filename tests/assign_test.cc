// Tests for the provenance-based confidence-assignment substrate.

#include <gtest/gtest.h>

#include "assign/assigner.h"
#include "assign/provenance.h"
#include "assign/trust_model.h"

namespace pcqe {
namespace {

TEST(ProvenanceGraphTest, AddAgentValidates) {
  ProvenanceGraph g;
  EXPECT_TRUE(g.AddAgent({"", 0.5, true}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddAgent({"s", 1.5, true}).status().IsInvalidArgument());
  AgentId a = *g.AddAgent({"s", 0.7, true});
  EXPECT_EQ(g.agent(a).name, "s");
  EXPECT_EQ(g.num_agents(), 1u);
}

TEST(ProvenanceGraphTest, AddItemValidatesAgents) {
  ProvenanceGraph g;
  AgentId src = *g.AddAgent({"source", 0.8, true});
  AgentId mid = *g.AddAgent({"relay", 0.9, false});
  // Unknown agents.
  EXPECT_TRUE(g.AddItem({"e", 1.0, 99, {}}).status().IsNotFound());
  EXPECT_TRUE(g.AddItem({"e", 1.0, src, {99}}).status().IsNotFound());
  // Role mismatches.
  EXPECT_TRUE(g.AddItem({"e", 1.0, mid, {}}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddItem({"e", 1.0, src, {src}}).status().IsInvalidArgument());
  // Empty entity.
  EXPECT_TRUE(g.AddItem({"", 1.0, src, {}}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddItem({"e", 1.0, src, {mid}}).ok());
}

TEST(ProvenanceGraphTest, EntityGroupsPartitionItems) {
  ProvenanceGraph g;
  AgentId s = *g.AddAgent({"s", 0.5, true});
  (void)*g.AddItem({"alpha", 1.0, s, {}});
  (void)*g.AddItem({"beta", 2.0, s, {}});
  (void)*g.AddItem({"alpha", 1.1, s, {}});
  ASSERT_EQ(g.entity_groups().size(), 2u);
  EXPECT_EQ(g.entity_groups()[0].size(), 2u);
  EXPECT_EQ(g.entity_groups()[1].size(), 1u);
}

TEST(TrustModelTest, SimilarityKernel) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(3.0, 3.0, 1.0), 1.0);
  EXPECT_NEAR(ValueSimilarity(0.0, 1.0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_LT(ValueSimilarity(0.0, 10.0, 1.0), 1e-6);
  // Wider sigma forgives larger gaps.
  EXPECT_GT(ValueSimilarity(0.0, 2.0, 5.0), ValueSimilarity(0.0, 2.0, 1.0));
}

TEST(TrustModelTest, OptionsValidated) {
  ProvenanceGraph g;
  TrustModelOptions bad;
  bad.similarity_sigma = 0.0;
  EXPECT_TRUE(ComputeTrust(g, bad).status().IsInvalidArgument());
  bad = {};
  bad.source_damping = 1.5;
  EXPECT_TRUE(ComputeTrust(g, bad).status().IsInvalidArgument());
  bad = {};
  bad.max_iterations = 0;
  EXPECT_TRUE(ComputeTrust(g, bad).status().IsInvalidArgument());
  bad = {};
  bad.weight_path = 0.0;
  EXPECT_TRUE(ComputeTrust(g, bad).status().IsInvalidArgument());
}

TEST(TrustModelTest, LoneItemGetsPathTrust) {
  ProvenanceGraph g;
  AgentId s = *g.AddAgent({"s", 0.8, true});
  AgentId relay = *g.AddAgent({"relay", 0.5, false});
  ItemId direct = *g.AddItem({"a", 1.0, s, {}});
  ItemId relayed = *g.AddItem({"b", 1.0, s, {relay}});
  TrustReport r = *ComputeTrust(g);
  EXPECT_TRUE(r.converged);
  // No peers: trust equals source x attenuation throughout.
  EXPECT_NEAR(r.item_trust[direct], 0.8, 1e-6);
  EXPECT_NEAR(r.item_trust[relayed], 0.4, 1e-6);
}

TEST(TrustModelTest, CorroborationRaisesTrust) {
  // Two independent sources reporting the same value about one entity.
  ProvenanceGraph lone_graph;
  AgentId ls = *lone_graph.AddAgent({"s1", 0.6, true});
  ItemId lone = *lone_graph.AddItem({"e", 5.0, ls, {}});
  double lone_trust = (*ComputeTrust(lone_graph)).item_trust[lone];

  ProvenanceGraph pair_graph;
  AgentId s1 = *pair_graph.AddAgent({"s1", 0.6, true});
  AgentId s2 = *pair_graph.AddAgent({"s2", 0.6, true});
  ItemId i1 = *pair_graph.AddItem({"e", 5.0, s1, {}});
  ItemId i2 = *pair_graph.AddItem({"e", 5.0, s2, {}});
  TrustReport r = *ComputeTrust(pair_graph);
  EXPECT_GT(r.item_trust[i1], lone_trust);
  EXPECT_GT(r.item_trust[i2], lone_trust);
}

TEST(TrustModelTest, ConflictLowersTrust) {
  ProvenanceGraph g;
  AgentId s1 = *g.AddAgent({"s1", 0.6, true});
  AgentId s2 = *g.AddAgent({"s2", 0.6, true});
  ItemId i1 = *g.AddItem({"e", 5.0, s1, {}});
  (void)*g.AddItem({"e", 50.0, s2, {}});  // wildly different claim
  TrustReport r = *ComputeTrust(g);
  EXPECT_LT(r.item_trust[i1], 0.6);
}

TEST(TrustModelTest, SelfRepetitionDoesNotCorroborate) {
  // One source repeating itself must not gain support.
  ProvenanceGraph g;
  AgentId s = *g.AddAgent({"s", 0.6, true});
  ItemId i1 = *g.AddItem({"e", 5.0, s, {}});
  (void)*g.AddItem({"e", 5.0, s, {}});
  (void)*g.AddItem({"e", 5.0, s, {}});
  TrustReport r = *ComputeTrust(g);
  EXPECT_NEAR(r.item_trust[i1], 0.6, 1e-6);
}

TEST(TrustModelTest, SourceTrustRevisedTowardItemTrust) {
  // A source whose claims conflict with two agreeing peers loses trust.
  ProvenanceGraph g;
  AgentId liar = *g.AddAgent({"liar", 0.8, true});
  AgentId s1 = *g.AddAgent({"s1", 0.7, true});
  AgentId s2 = *g.AddAgent({"s2", 0.7, true});
  for (int e = 0; e < 3; ++e) {
    std::string entity = "fact" + std::to_string(e);
    (void)*g.AddItem({entity, 100.0 + e, liar, {}});
    (void)*g.AddItem({entity, 1.0 + e, s1, {}});
    (void)*g.AddItem({entity, 1.0 + e, s2, {}});
  }
  TrustReport r = *ComputeTrust(g);
  EXPECT_LT(r.agent_trust[liar], 0.8);
  EXPECT_GT(r.agent_trust[s1], r.agent_trust[liar]);
  EXPECT_GE(r.agent_trust[s2], r.agent_trust[liar]);
}

TEST(TrustModelTest, TrustStaysInUnitInterval) {
  ProvenanceGraph g;
  AgentId s1 = *g.AddAgent({"s1", 1.0, true});
  AgentId s2 = *g.AddAgent({"s2", 1.0, true});
  AgentId s3 = *g.AddAgent({"s3", 0.0, true});
  (void)*g.AddItem({"e", 5.0, s1, {}});
  (void)*g.AddItem({"e", 5.0, s2, {}});
  (void)*g.AddItem({"e", -40.0, s3, {}});
  TrustReport r = *ComputeTrust(g);
  for (double t : r.item_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
  for (double t : r.agent_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(TrustModelTest, ConvergesAndIsDeterministic) {
  ProvenanceGraph g;
  AgentId s1 = *g.AddAgent({"s1", 0.5, true});
  AgentId s2 = *g.AddAgent({"s2", 0.7, true});
  AgentId relay = *g.AddAgent({"relay", 0.9, false});
  (void)*g.AddItem({"e1", 5.0, s1, {}});
  (void)*g.AddItem({"e1", 5.2, s2, {relay}});
  (void)*g.AddItem({"e2", 1.0, s1, {}});
  (void)*g.AddItem({"e2", 9.0, s2, {}});
  TrustReport a = *ComputeTrust(g);
  TrustReport b = *ComputeTrust(g);
  EXPECT_TRUE(a.converged);
  ASSERT_EQ(a.item_trust.size(), b.item_trust.size());
  for (size_t i = 0; i < a.item_trust.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.item_trust[i], b.item_trust[i]);
  }
}

TEST(TrustModelTest, IterationCapReportsNonConverged) {
  ProvenanceGraph g;
  AgentId s1 = *g.AddAgent({"s1", 0.5, true});
  AgentId s2 = *g.AddAgent({"s2", 0.9, true});
  (void)*g.AddItem({"e", 1.0, s1, {}});
  (void)*g.AddItem({"e", 100.0, s2, {}});
  TrustModelOptions options;
  options.max_iterations = 1;
  options.tolerance = 0.0;
  TrustReport r = *ComputeTrust(g, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
}

class AssignerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = *catalog_.CreateTable(
        "readings", Schema({{"entity", DataType::kString, ""},
                            {"value", DataType::kDouble, ""}}));
    id_a_ = *table_->Insert({Value::String("e"), Value::Double(5.0)}, 0.0);
    id_b_ = *table_->Insert({Value::String("e"), Value::Double(5.1)}, 0.0, nullptr,
                            /*max_confidence=*/0.3);

    src1_ = *graph_.AddAgent({"s1", 0.7, true});
    src2_ = *graph_.AddAgent({"s2", 0.7, true});
    item_a_ = *graph_.AddItem({"e", 5.0, src1_, {}});
    item_b_ = *graph_.AddItem({"e", 5.1, src2_, {}});
  }

  Catalog catalog_;
  Table* table_ = nullptr;
  ProvenanceGraph graph_;
  BaseTupleId id_a_ = 0, id_b_ = 0;
  AgentId src1_ = 0, src2_ = 0;
  ItemId item_a_ = 0, item_b_ = 0;
};

TEST_F(AssignerTest, WritesComputedConfidences) {
  AssignmentReport report = *AssignConfidences(
      &catalog_, graph_, {{id_a_, item_a_}, {id_b_, item_b_}});
  EXPECT_TRUE(report.trust.converged);
  const Tuple* a = *catalog_.FindTuple(id_a_);
  EXPECT_NEAR(a->confidence(), report.trust.item_trust[item_a_], 1e-12);
  EXPECT_GT(a->confidence(), 0.7);  // corroborated by the agreeing peer
}

TEST_F(AssignerTest, RespectsTupleCeiling) {
  (void)*AssignConfidences(&catalog_, graph_, {{id_b_, item_b_}});
  const Tuple* b = *catalog_.FindTuple(id_b_);
  EXPECT_DOUBLE_EQ(b->confidence(), 0.3);  // capped despite higher trust
}

TEST_F(AssignerTest, ValidatesBeforeWriting) {
  // Second mapping entry is bad: nothing may be written.
  auto r = AssignConfidences(&catalog_, graph_,
                             {{id_a_, item_a_}, {id_a_ + 12345, item_b_}});
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_DOUBLE_EQ((*catalog_.FindTuple(id_a_))->confidence(), 0.0);

  auto r2 = AssignConfidences(&catalog_, graph_, {{id_a_, 999}});
  EXPECT_TRUE(r2.status().IsNotFound());
}

}  // namespace
}  // namespace pcqe
