#!/bin/sh
# Negative-compile gate for the Clang Thread Safety annotations in
# src/common/annotations.h.
#
# Each tests/thread_safety/good_*.cc must compile clean under
#   clang++ -Wthread-safety -Wthread-safety-beta -Werror
# and each bad_*.cc must be REJECTED, with the rejection attributable to
# the thread-safety analysis (an unrelated compile error would let the
# fixtures bit-rot while the gate stays green).
#
# The analysis is clang-only — on other compilers the annotation macros
# expand to nothing — so the test skips (exit 77, ctest SKIP_RETURN_CODE)
# when no clang++ is on PATH.
#
# Usage: thread_safety_compile_test.sh <src-dir> <fixture-dir> [clang++]
# Exit: 0 every fixture behaves, 1 a fixture misbehaves, 77 skipped.
set -u

SRC_DIR=${1:?usage: $0 <src-dir> <fixture-dir> [clang++]}
FIXTURE_DIR=${2:?usage: $0 <src-dir> <fixture-dir> [clang++]}
CXX=${3:-}

if [ -z "$CXX" ]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
      clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX=$candidate
      break
    fi
  done
fi
if [ -z "$CXX" ] || ! command -v "$CXX" >/dev/null 2>&1; then
  echo "SKIP: no clang++ on PATH; thread-safety analysis is clang-only" >&2
  exit 77
fi
if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: $CXX is not clang; the annotations expand to nothing" >&2
  exit 77
fi

FLAGS="-std=c++20 -fsyntax-only -I$SRC_DIR -Wthread-safety -Wthread-safety-beta -Werror"

fail=0

for f in "$FIXTURE_DIR"/good_*.cc; do
  [ -e "$f" ] || continue
  if out=$("$CXX" $FLAGS "$f" 2>&1); then
    echo "PASS: $(basename "$f") compiles clean"
  else
    echo "FAIL: $(basename "$f") must compile under -Wthread-safety -Werror:" >&2
    echo "$out" >&2
    fail=1
  fi
done

for f in "$FIXTURE_DIR"/bad_*.cc; do
  [ -e "$f" ] || continue
  if out=$("$CXX" $FLAGS "$f" 2>&1); then
    echo "FAIL: $(basename "$f") compiled but must be rejected" >&2
    fail=1
  elif printf '%s\n' "$out" | grep -q 'thread-safety'; then
    echo "PASS: $(basename "$f") rejected by the analysis"
  else
    echo "FAIL: $(basename "$f") failed for a reason other than thread-safety:" >&2
    echo "$out" >&2
    fail=1
  fi
done

exit $fail
