// Copyright (c) PCQE contributors.
// Error-handling idiom tests: ValueOrDie is fatal in every build type, and
// the propagation macros forward the original code and message unchanged.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {
namespace {

Result<int> FailWith(Status status) { return status; }

Status ReturnNotOkWrapper(const Status& s) {
  PCQE_RETURN_NOT_OK(s);
  return Status::OK();
}

Status AssignOrReturnWrapper(Result<int> r, int* out) {
  PCQE_ASSIGN_OR_RETURN(*out, std::move(r));
  return Status::OK();
}

Result<std::string> AssignOrReturnChain(Result<int> r) {
  PCQE_ASSIGN_OR_RETURN(int v, std::move(r));
  return std::to_string(v);
}

TEST(ResultDeathTest, ValueOrDieOnErrorIsFatalInAllBuildTypes) {
  // PCQE_CHECK (not assert / PCQE_DCHECK) backs ValueOrDie, so the abort
  // must fire even when the test binary is compiled with NDEBUG.
  Result<int> error = FailWith(Status::Internal("lineage arena corrupted"));
  EXPECT_DEATH({ [[maybe_unused]] int v = error.ValueOrDie(); },
               "ValueOrDie\\(\\) on error Result.*lineage arena corrupted");
}

TEST(ResultDeathTest, DereferenceOnErrorIsFatal) {
  Result<int> error = FailWith(Status::NotFound("no such tuple"));
  EXPECT_DEATH({ [[maybe_unused]] int v = *error; }, "no such tuple");
}

TEST(ResultTest, ValueOrDieReturnsValueWhenOk) {
  Result<int> ok = 41;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 41);
  EXPECT_EQ(*ok, 41);
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> error = FailWith(Status::Infeasible("target unreachable"));
  EXPECT_EQ(error.ValueOr(7), 7);
}

TEST(StatusPropagationTest, ReturnNotOkForwardsCodeAndMessageUnchanged) {
  Status original = Status::PermissionDenied("analyst may not see raw_feed");
  Status propagated = ReturnNotOkWrapper(original);
  EXPECT_EQ(propagated.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(propagated.message(), "analyst may not see raw_feed");
  EXPECT_EQ(propagated, original);
}

TEST(StatusPropagationTest, ReturnNotOkPassesThroughOk) {
  EXPECT_TRUE(ReturnNotOkWrapper(Status::OK()).ok());
}

TEST(StatusPropagationTest, AssignOrReturnForwardsErrorUnchanged) {
  int out = -1;
  Status propagated =
      AssignOrReturnWrapper(FailWith(Status::BindError("unknown column conf")), &out);
  EXPECT_EQ(propagated.code(), StatusCode::kBindError);
  EXPECT_EQ(propagated.message(), "unknown column conf");
  EXPECT_EQ(out, -1) << "lhs must not be assigned on the error path";
}

TEST(StatusPropagationTest, AssignOrReturnAssignsOnOk) {
  int out = -1;
  ASSERT_TRUE(AssignOrReturnWrapper(Result<int>(42), &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(StatusPropagationTest, AssignOrReturnErrorCrossesResultTypes) {
  // A Result<int> error must surface untouched through a Result<string>
  // function: same code, same message.
  Result<std::string> r = AssignOrReturnChain(FailWith(Status::ParseError("bad token ';'")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.status().message(), "bad token ';'");
}

TEST(StatusPropagationTest, WithContextPrependsButKeepsCode) {
  Status s = Status::NotFound("tuple 12").WithContext("loading policy");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "loading policy: tuple 12");
}

}  // namespace
}  // namespace pcqe
