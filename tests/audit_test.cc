// Tests for the policy-compliance audit log: engine-recorded query
// decisions (β, confidence version, per-row verdicts), the blocked-row
// privacy contract (lineage identifiers only, never values), accepted
// proposals, ring wraparound, and the JSON export.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/pcqe_engine.h"
#include "telemetry/audit.h"
#include "telemetry/metrics.h"

namespace pcqe {
namespace {

constexpr const char* kSecretBlocked = "SECRET-BLOCKED-VALUE-42";
constexpr const char* kSecretReleased = "public-value";

/// One table `t(id, secret)` with a low-confidence middle row holding a
/// sensitive value; policy <R, general, 0.5> blocks exactly that row.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* t = *catalog_.CreateTable(
        "t", Schema({{"id", DataType::kInt64, ""},
                     {"secret", DataType::kString, ""}}));
    ASSERT_TRUE(
        t->Insert({Value::Int(1), Value::String(kSecretReleased)}, 0.9).ok());
    blocked_id_ = *t->Insert({Value::Int(2), Value::String(kSecretBlocked)}, 0.2,
                             *MakeLinearCost(100.0));
    ASSERT_TRUE(
        t->Insert({Value::Int(3), Value::String(kSecretReleased)}, 0.7).ok());

    RoleGraph roles;
    ASSERT_TRUE(roles.AddRole("R").ok());
    ASSERT_TRUE(roles.AddUser("u").ok());
    ASSERT_TRUE(roles.AssignRole("u", "R").ok());
    PolicyStore policies;
    ASSERT_TRUE(policies.AddPolicy(roles, {"R", "general", 0.5}).ok());
    engine_ = std::make_unique<PcqeEngine>(&catalog_, std::move(roles),
                                           std::move(policies));
    engine_->AttachAudit(&audit_);
  }

  Catalog catalog_;
  AuditLog audit_;
  std::unique_ptr<PcqeEngine> engine_;
  BaseTupleId blocked_id_ = 0;
};

TEST_F(AuditTest, QueryDecisionIsReconstructible) {
  QueryOutcome outcome =
      *engine_->Submit({"SELECT id, secret FROM t", "u", "general", 1.0});
  ASSERT_NE(outcome.audit_id, 0u);
  std::optional<AuditRecord> record = audit_.Get(outcome.audit_id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, AuditRecord::Kind::kQuery);
  EXPECT_EQ(record->user, "u");
  EXPECT_EQ(record->purpose, "general");
  EXPECT_DOUBLE_EQ(record->beta, 0.5);
  EXPECT_EQ(record->confidence_version, catalog_.confidence_version());
  EXPECT_DOUBLE_EQ(record->required_fraction, 1.0);
  EXPECT_EQ(record->rows_total, outcome.intermediate.rows.size());
  EXPECT_EQ(record->rows_released, outcome.released.size());
  EXPECT_EQ(record->rows_blocked,
            outcome.intermediate.rows.size() - outcome.released.size());
  EXPECT_DOUBLE_EQ(record->released_fraction, outcome.released_fraction);
  EXPECT_EQ(record->rows_truncated, 0u);
  ASSERT_EQ(record->rows.size(), 3u);
  int blocked = 0;
  for (const AuditRowDecision& row : record->rows) {
    if (row.released) {
      EXPECT_GT(row.confidence, 0.5);
      EXPECT_TRUE(row.lineage.empty());
    } else {
      ++blocked;
      EXPECT_LT(row.confidence, 0.5);
      // The blocked row is identified by lineage (`t#<row>`), never value.
      EXPECT_NE(row.lineage.find("t#"), std::string::npos) << row.lineage;
    }
  }
  EXPECT_EQ(blocked, 1);
  // The shortfall (required 1.0, released 2/3) produced a solver proposal.
  EXPECT_TRUE(record->proposal_needed);
  EXPECT_EQ(record->proposal_needed, outcome.proposal.needed);
  EXPECT_FALSE(record->proposal_algorithm.empty());
}

TEST_F(AuditTest, BlockedValuesNeverAppearInExports) {
  QueryOutcome outcome =
      *engine_->Submit({"SELECT id, secret FROM t", "u", "general", 1.0});
  ASSERT_NE(outcome.audit_id, 0u);
  std::optional<AuditRecord> record = audit_.Get(outcome.audit_id);
  ASSERT_TRUE(record.has_value());
  // Negative redaction test: neither rendering may carry any result value —
  // not even released ones; the audit describes decisions, not data.
  for (const std::string& rendered :
       {record->ToString(), record->ToJson(), audit_.RenderJson()}) {
    EXPECT_EQ(rendered.find(kSecretBlocked), std::string::npos) << rendered;
    EXPECT_EQ(rendered.find(kSecretReleased), std::string::npos) << rendered;
  }
}

TEST_F(AuditTest, AcceptProposalIsRecordedWithVersionBump) {
  QueryOutcome outcome =
      *engine_->Submit({"SELECT id, secret FROM t", "u", "general", 1.0});
  ASSERT_TRUE(outcome.proposal.needed);
  ASSERT_TRUE(outcome.proposal.feasible);
  uint64_t version_before = catalog_.confidence_version();
  ASSERT_TRUE(engine_->AcceptProposal(outcome.proposal).ok());
  std::vector<AuditRecord> records = audit_.Snapshot();
  ASSERT_FALSE(records.empty());
  const AuditRecord& accept = records.front();  // newest first
  EXPECT_EQ(accept.kind, AuditRecord::Kind::kAccept);
  EXPECT_EQ(accept.accept_actions, outcome.proposal.actions.size());
  EXPECT_DOUBLE_EQ(accept.accept_cost, outcome.proposal.total_cost);
  EXPECT_TRUE(accept.accept_ok);
  EXPECT_TRUE(accept.accept_error.empty());
  EXPECT_GT(accept.confidence_version, version_before);
  EXPECT_EQ(accept.confidence_version, catalog_.confidence_version());
  EXPECT_NE(accept.ToString().find("[accept]"), std::string::npos)
      << accept.ToString();
}

TEST_F(AuditTest, PerRowDetailIsCappedWithTruncationCount) {
  AuditLog small(8, 2);
  engine_->AttachAudit(&small);
  // Fraction 0 would qualify for β pushdown, which prunes the blocked row
  // out of the intermediate result — keep all 3 rows so the cap truncates.
  QueryRequest request{"SELECT id, secret FROM t", "u", "general", 0.0};
  request.pushdown = false;
  QueryOutcome outcome = *engine_->Submit(request);
  std::optional<AuditRecord> record = small.Get(outcome.audit_id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->rows_total, 3u);
  EXPECT_EQ(record->rows.size(), 2u);
  EXPECT_EQ(record->rows_truncated, 1u);
  engine_->AttachAudit(&audit_);
}

TEST(AuditLogTest, RingEvictsOldestAndKeepsIdsMonotonic) {
  TelemetryRegistry registry;
  AuditLog log(3);
  log.AttachTelemetry(&registry);
  Counter* evicted = registry.GetCounter("pcqe_audit_evicted_total");
  for (int i = 0; i < 5; ++i) {
    AuditRecord record;
    record.user = "u" + std::to_string(i);
    EXPECT_EQ(log.Record(std::move(record)), static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(evicted->value(), 2u);
  EXPECT_EQ(registry.GetCounter("pcqe_audit_records_total")->value(), 5u);
  std::vector<AuditRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().id, 5u);  // newest first
  EXPECT_EQ(records.back().id, 3u);
  EXPECT_FALSE(log.Get(1).has_value());  // evicted, id never reused
  ASSERT_TRUE(log.Get(4).has_value());
  EXPECT_EQ(log.Get(4)->user, "u3");
  // Ids continue past the wraparound.
  EXPECT_EQ(log.Record(AuditRecord{}), 6u);
}

TEST(AuditLogTest, DisabledLogRecordsNothing) {
  AuditLog off(0);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.Record(AuditRecord{}), 0u);
  EXPECT_EQ(off.total_recorded(), 0u);
  EXPECT_TRUE(off.Snapshot().empty());
}

TEST(AuditLogTest, RenderJsonIsBalancedAndEscaped) {
  AuditLog log(4);
  AuditRecord record;
  record.user = "needs\"escaping\\here";
  record.sql = "SELECT 1;\n-- comment";
  AuditRowDecision row;
  row.row = 0;
  row.confidence = 0.25;
  row.lineage = "t#0";
  record.rows.push_back(row);
  record.rows_total = 1;
  record.rows_blocked = 1;
  (void)log.Record(std::move(record));
  std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"audit\":["), std::string::npos) << json;
  EXPECT_NE(json.find("needs\\\"escaping\\\\here"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n-- comment"), std::string::npos) << json;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace pcqe
