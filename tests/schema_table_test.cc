// Unit tests for relational schema, tuple, table and catalog.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace pcqe {
namespace {

Schema ProposalSchema() {
  return Schema({{"company", DataType::kString, ""},
                 {"proposal", DataType::kString, ""},
                 {"funding", DataType::kDouble, ""}});
}

TEST(SchemaTest, IndexOfUnqualified) {
  Schema s = ProposalSchema();
  EXPECT_EQ(*s.IndexOf("company"), 0u);
  EXPECT_EQ(*s.IndexOf("FUNDING"), 2u);  // case-insensitive
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
}

TEST(SchemaTest, QualifiedLookup) {
  Schema s = ProposalSchema().WithQualifier("p");
  EXPECT_EQ(*s.IndexOf("p.company"), 0u);
  EXPECT_EQ(*s.IndexOf("P.Company"), 0u);
  EXPECT_TRUE(s.IndexOf("q.company").status().IsNotFound());
  EXPECT_EQ(s.column(0).QualifiedName(), "p.company");
}

TEST(SchemaTest, AmbiguousUnqualifiedReferenceIsBindError) {
  Schema joined = ProposalSchema().WithQualifier("a").Concat(
      ProposalSchema().WithQualifier("b"));
  EXPECT_TRUE(joined.IndexOf("company").status().IsBindError());
  EXPECT_EQ(*joined.IndexOf("a.company"), 0u);
  EXPECT_EQ(*joined.IndexOf("b.company"), 3u);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema s = ProposalSchema().Concat(Schema({{"income", DataType::kDouble, ""}}));
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(3).name, "income");
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"a", DataType::kInt64, "t"}});
  EXPECT_EQ(s.ToString(), "(t.a BIGINT)");
}

TEST(TupleTest, ClampsConfidenceToCeiling) {
  Tuple t(1, {Value::Int(1)}, 0.9, nullptr, 0.8);
  EXPECT_DOUBLE_EQ(t.confidence(), 0.8);
  EXPECT_DOUBLE_EQ(t.max_confidence(), 0.8);
  t.set_confidence(0.95);
  EXPECT_DOUBLE_EQ(t.confidence(), 0.8);
  t.set_confidence(0.5);
  EXPECT_DOUBLE_EQ(t.confidence(), 0.5);
}

TEST(TupleTest, DefaultsToUnitLinearCost) {
  Tuple t(1, {Value::Int(1)}, 0.3);
  ASSERT_NE(t.cost_function(), nullptr);
  EXPECT_NEAR(t.cost_function()->Increment(0.3, 0.5), 0.2, 1e-12);
}

TEST(TupleTest, ToStringIncludesConfidence) {
  Tuple t(1, {Value::String("x"), Value::Int(2)}, 0.3);
  EXPECT_EQ(t.ToString(), "(x, 2) @ p=0.3");
}

TEST(TableTest, InsertValidatesArity) {
  Table t("proposal", ProposalSchema());
  EXPECT_TRUE(t.Insert({Value::String("a")}, 0.5).status().IsInvalidArgument());
}

TEST(TableTest, InsertValidatesTypes) {
  Table t("proposal", ProposalSchema());
  auto bad = t.Insert({Value::Int(1), Value::String("p"), Value::Double(1.0)}, 0.5);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  // NULL accepted anywhere; BIGINT widens into DOUBLE columns.
  auto ok = t.Insert({Value::Null(), Value::String("p"), Value::Int(100)}, 0.5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(t.tuple(0).value(2).type(), DataType::kDouble);
}

TEST(TableTest, InsertValidatesConfidence) {
  Table t("proposal", ProposalSchema());
  std::vector<Value> row = {Value::String("a"), Value::String("p"), Value::Double(1.0)};
  EXPECT_TRUE(t.Insert(row, -0.1).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert(row, 1.1).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert(row, 0.5, nullptr, 0.4).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert(row, 0.5, nullptr, 0.9).ok());
}

TEST(TableTest, TupleIdsEncodeTableAndRow) {
  Table t("x", Schema({{"a", DataType::kInt64, ""}}), /*table_id=*/7);
  BaseTupleId id0 = *t.Insert({Value::Int(1)}, 0.1);
  BaseTupleId id1 = *t.Insert({Value::Int(2)}, 0.2);
  EXPECT_EQ(id0 >> 32, 7u);
  EXPECT_EQ(id1, id0 + 1);
  EXPECT_EQ((*t.FindTuple(id1))->value(0), Value::Int(2));
  EXPECT_TRUE(t.FindTuple((8ULL << 32)).status().IsNotFound());
  EXPECT_TRUE(t.FindTuple(id1 + 1).status().IsNotFound());
}

TEST(TableTest, SetConfidence) {
  Table t("x", Schema({{"a", DataType::kInt64, ""}}), 1);
  BaseTupleId id = *t.Insert({Value::Int(1)}, 0.3, nullptr, 0.9);
  EXPECT_TRUE(t.SetConfidence(id, 0.7).ok());
  EXPECT_DOUBLE_EQ((*t.FindTuple(id))->confidence(), 0.7);
  EXPECT_TRUE(t.SetConfidence(id, 0.95).IsInvalidArgument());
  EXPECT_TRUE(t.SetConfidence(id + 100, 0.5).IsNotFound());
}

TEST(CatalogTest, CreateAndGet) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("Proposal", ProposalSchema()).ok());
  EXPECT_TRUE(c.GetTable("proposal").ok());  // case-insensitive
  EXPECT_TRUE(c.GetTable("PROPOSAL").ok());
  EXPECT_TRUE(c.CreateTable("proposal", ProposalSchema()).status().IsAlreadyExists());
  EXPECT_TRUE(c.GetTable("other").status().IsNotFound());
  EXPECT_TRUE(c.CreateTable("", ProposalSchema()).status().IsInvalidArgument());
}

TEST(CatalogTest, TupleIdsUniqueAcrossTables) {
  Catalog c;
  Table* a = *c.CreateTable("a", Schema({{"x", DataType::kInt64, ""}}));
  Table* b = *c.CreateTable("b", Schema({{"x", DataType::kInt64, ""}}));
  BaseTupleId ia = *a->Insert({Value::Int(1)}, 0.1);
  BaseTupleId ib = *b->Insert({Value::Int(1)}, 0.2);
  EXPECT_NE(ia, ib);
  EXPECT_DOUBLE_EQ((*c.FindTuple(ia))->confidence(), 0.1);
  EXPECT_DOUBLE_EQ((*c.FindTuple(ib))->confidence(), 0.2);
}

TEST(CatalogTest, SetConfidenceRoutesToOwningTable) {
  Catalog c;
  Table* a = *c.CreateTable("a", Schema({{"x", DataType::kInt64, ""}}));
  BaseTupleId id = *a->Insert({Value::Int(1)}, 0.1);
  EXPECT_TRUE(c.SetConfidence(id, 0.4).ok());
  EXPECT_DOUBLE_EQ((*c.FindTuple(id))->confidence(), 0.4);
  EXPECT_TRUE(c.SetConfidence((99ULL << 32), 0.4).IsNotFound());
}

TEST(CatalogTest, DropTableRetiresIdSpace) {
  Catalog c;
  Table* a = *c.CreateTable("a", Schema({{"x", DataType::kInt64, ""}}));
  BaseTupleId stale = *a->Insert({Value::Int(1)}, 0.1);
  ASSERT_TRUE(c.DropTable("a").ok());
  EXPECT_TRUE(c.DropTable("a").IsNotFound());
  // Re-created table gets a fresh id prefix; the stale id resolves nowhere.
  Table* a2 = *c.CreateTable("a", Schema({{"x", DataType::kInt64, ""}}));
  BaseTupleId fresh = *a2->Insert({Value::Int(2)}, 0.2);
  EXPECT_NE(stale >> 32, fresh >> 32);
  EXPECT_TRUE(c.FindTuple(stale).status().IsNotFound());
}

TEST(CatalogTest, TableNamesInCreationOrder) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("zeta", ProposalSchema()).ok());
  ASSERT_TRUE(c.CreateTable("alpha", ProposalSchema()).ok());
  EXPECT_EQ(c.TableNames(), (std::vector<std::string>{"zeta", "alpha"}));
}

}  // namespace
}  // namespace pcqe
