file(REMOVE_RECURSE
  "CMakeFiles/improver_test.dir/improver_test.cc.o"
  "CMakeFiles/improver_test.dir/improver_test.cc.o.d"
  "improver_test"
  "improver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/improver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
