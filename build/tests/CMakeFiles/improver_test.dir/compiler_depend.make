# Empty compiler generated dependencies file for improver_test.
# This may be replaced when dependencies are built.
