# Empty dependencies file for database_io_test.
# This may be replaced when dependencies are built.
