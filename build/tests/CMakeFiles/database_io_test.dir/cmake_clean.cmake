file(REMOVE_RECURSE
  "CMakeFiles/database_io_test.dir/database_io_test.cc.o"
  "CMakeFiles/database_io_test.dir/database_io_test.cc.o.d"
  "database_io_test"
  "database_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
