file(REMOVE_RECURSE
  "CMakeFiles/provenance_trust.dir/provenance_trust.cpp.o"
  "CMakeFiles/provenance_trust.dir/provenance_trust.cpp.o.d"
  "provenance_trust"
  "provenance_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
