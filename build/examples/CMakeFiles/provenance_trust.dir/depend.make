# Empty dependencies file for provenance_trust.
# This may be replaced when dependencies are built.
