file(REMOVE_RECURSE
  "CMakeFiles/venture_capital.dir/venture_capital.cpp.o"
  "CMakeFiles/venture_capital.dir/venture_capital.cpp.o.d"
  "venture_capital"
  "venture_capital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/venture_capital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
