# Empty dependencies file for venture_capital.
# This may be replaced when dependencies are built.
