file(REMOVE_RECURSE
  "CMakeFiles/healthcare.dir/healthcare.cpp.o"
  "CMakeFiles/healthcare.dir/healthcare.cpp.o.d"
  "healthcare"
  "healthcare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
