# Empty dependencies file for fig11_b_greedy_time.
# This may be replaced when dependencies are built.
