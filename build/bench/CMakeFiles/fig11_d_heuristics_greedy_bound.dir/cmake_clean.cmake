file(REMOVE_RECURSE
  "CMakeFiles/fig11_d_heuristics_greedy_bound.dir/fig11_d_heuristics_greedy_bound.cc.o"
  "CMakeFiles/fig11_d_heuristics_greedy_bound.dir/fig11_d_heuristics_greedy_bound.cc.o.d"
  "fig11_d_heuristics_greedy_bound"
  "fig11_d_heuristics_greedy_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_d_heuristics_greedy_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
