# Empty compiler generated dependencies file for fig11_d_heuristics_greedy_bound.
# This may be replaced when dependencies are built.
