# Empty dependencies file for extension_multi_query.
# This may be replaced when dependencies are built.
