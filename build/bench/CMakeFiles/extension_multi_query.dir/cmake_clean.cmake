file(REMOVE_RECURSE
  "CMakeFiles/extension_multi_query.dir/extension_multi_query.cc.o"
  "CMakeFiles/extension_multi_query.dir/extension_multi_query.cc.o.d"
  "extension_multi_query"
  "extension_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
