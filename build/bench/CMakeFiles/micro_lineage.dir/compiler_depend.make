# Empty compiler generated dependencies file for micro_lineage.
# This may be replaced when dependencies are built.
