file(REMOVE_RECURSE
  "CMakeFiles/micro_lineage.dir/micro_lineage.cc.o"
  "CMakeFiles/micro_lineage.dir/micro_lineage.cc.o.d"
  "micro_lineage"
  "micro_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
