file(REMOVE_RECURSE
  "CMakeFiles/fig11_e_greedy_cost.dir/fig11_e_greedy_cost.cc.o"
  "CMakeFiles/fig11_e_greedy_cost.dir/fig11_e_greedy_cost.cc.o.d"
  "fig11_e_greedy_cost"
  "fig11_e_greedy_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_e_greedy_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
