# Empty dependencies file for fig11_e_greedy_cost.
# This may be replaced when dependencies are built.
