file(REMOVE_RECURSE
  "CMakeFiles/fig11_a_heuristics.dir/fig11_a_heuristics.cc.o"
  "CMakeFiles/fig11_a_heuristics.dir/fig11_a_heuristics.cc.o.d"
  "fig11_a_heuristics"
  "fig11_a_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_a_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
