# Empty compiler generated dependencies file for fig11_a_heuristics.
# This may be replaced when dependencies are built.
