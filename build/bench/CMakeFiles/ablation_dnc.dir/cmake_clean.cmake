file(REMOVE_RECURSE
  "CMakeFiles/ablation_dnc.dir/ablation_dnc.cc.o"
  "CMakeFiles/ablation_dnc.dir/ablation_dnc.cc.o.d"
  "ablation_dnc"
  "ablation_dnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
