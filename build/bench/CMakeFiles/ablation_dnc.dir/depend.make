# Empty dependencies file for ablation_dnc.
# This may be replaced when dependencies are built.
