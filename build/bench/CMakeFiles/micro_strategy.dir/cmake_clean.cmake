file(REMOVE_RECURSE
  "CMakeFiles/micro_strategy.dir/micro_strategy.cc.o"
  "CMakeFiles/micro_strategy.dir/micro_strategy.cc.o.d"
  "micro_strategy"
  "micro_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
