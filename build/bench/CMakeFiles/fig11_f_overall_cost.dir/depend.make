# Empty dependencies file for fig11_f_overall_cost.
# This may be replaced when dependencies are built.
