# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_f_overall_cost.
