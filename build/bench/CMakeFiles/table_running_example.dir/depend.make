# Empty dependencies file for table_running_example.
# This may be replaced when dependencies are built.
