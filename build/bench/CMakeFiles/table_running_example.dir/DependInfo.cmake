
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table_running_example.cc" "bench/CMakeFiles/table_running_example.dir/table_running_example.cc.o" "gcc" "bench/CMakeFiles/table_running_example.dir/table_running_example.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pcqe_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/pcqe_query.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/pcqe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/improve/CMakeFiles/pcqe_improve.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/pcqe_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/pcqe_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/pcqe_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pcqe_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
