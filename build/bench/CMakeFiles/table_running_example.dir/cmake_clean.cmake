file(REMOVE_RECURSE
  "CMakeFiles/table_running_example.dir/table_running_example.cc.o"
  "CMakeFiles/table_running_example.dir/table_running_example.cc.o.d"
  "table_running_example"
  "table_running_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_running_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
