# Empty dependencies file for fig11_c_overall_time.
# This may be replaced when dependencies are built.
