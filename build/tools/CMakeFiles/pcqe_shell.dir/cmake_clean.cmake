file(REMOVE_RECURSE
  "CMakeFiles/pcqe_shell.dir/pcqe_shell.cc.o"
  "CMakeFiles/pcqe_shell.dir/pcqe_shell.cc.o.d"
  "pcqe_shell"
  "pcqe_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
