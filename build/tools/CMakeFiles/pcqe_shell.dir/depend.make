# Empty dependencies file for pcqe_shell.
# This may be replaced when dependencies are built.
