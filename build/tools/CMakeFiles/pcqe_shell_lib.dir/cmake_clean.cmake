file(REMOVE_RECURSE
  "CMakeFiles/pcqe_shell_lib.dir/shell.cc.o"
  "CMakeFiles/pcqe_shell_lib.dir/shell.cc.o.d"
  "libpcqe_shell_lib.a"
  "libpcqe_shell_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_shell_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
