# Empty compiler generated dependencies file for pcqe_shell_lib.
# This may be replaced when dependencies are built.
