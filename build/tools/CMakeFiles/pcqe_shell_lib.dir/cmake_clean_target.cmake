file(REMOVE_RECURSE
  "libpcqe_shell_lib.a"
)
