file(REMOVE_RECURSE
  "libpcqe_improve.a"
)
