file(REMOVE_RECURSE
  "CMakeFiles/pcqe_improve.dir/improver.cc.o"
  "CMakeFiles/pcqe_improve.dir/improver.cc.o.d"
  "CMakeFiles/pcqe_improve.dir/lead_time.cc.o"
  "CMakeFiles/pcqe_improve.dir/lead_time.cc.o.d"
  "libpcqe_improve.a"
  "libpcqe_improve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
