# Empty compiler generated dependencies file for pcqe_improve.
# This may be replaced when dependencies are built.
