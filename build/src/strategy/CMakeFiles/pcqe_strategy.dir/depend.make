# Empty dependencies file for pcqe_strategy.
# This may be replaced when dependencies are built.
