file(REMOVE_RECURSE
  "CMakeFiles/pcqe_strategy.dir/brute_force.cc.o"
  "CMakeFiles/pcqe_strategy.dir/brute_force.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/dnc.cc.o"
  "CMakeFiles/pcqe_strategy.dir/dnc.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/greedy.cc.o"
  "CMakeFiles/pcqe_strategy.dir/greedy.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/heuristic.cc.o"
  "CMakeFiles/pcqe_strategy.dir/heuristic.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/partition.cc.o"
  "CMakeFiles/pcqe_strategy.dir/partition.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/problem.cc.o"
  "CMakeFiles/pcqe_strategy.dir/problem.cc.o.d"
  "CMakeFiles/pcqe_strategy.dir/solution.cc.o"
  "CMakeFiles/pcqe_strategy.dir/solution.cc.o.d"
  "libpcqe_strategy.a"
  "libpcqe_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
