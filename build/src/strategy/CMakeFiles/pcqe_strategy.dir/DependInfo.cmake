
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/brute_force.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/brute_force.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/brute_force.cc.o.d"
  "/root/repo/src/strategy/dnc.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/dnc.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/dnc.cc.o.d"
  "/root/repo/src/strategy/greedy.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/greedy.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/greedy.cc.o.d"
  "/root/repo/src/strategy/heuristic.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/heuristic.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/heuristic.cc.o.d"
  "/root/repo/src/strategy/partition.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/partition.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/partition.cc.o.d"
  "/root/repo/src/strategy/problem.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/problem.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/problem.cc.o.d"
  "/root/repo/src/strategy/solution.cc" "src/strategy/CMakeFiles/pcqe_strategy.dir/solution.cc.o" "gcc" "src/strategy/CMakeFiles/pcqe_strategy.dir/solution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcqe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/pcqe_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pcqe_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
