file(REMOVE_RECURSE
  "libpcqe_strategy.a"
)
