# Empty dependencies file for pcqe_engine.
# This may be replaced when dependencies are built.
