file(REMOVE_RECURSE
  "libpcqe_engine.a"
)
