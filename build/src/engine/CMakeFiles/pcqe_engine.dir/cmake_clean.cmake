file(REMOVE_RECURSE
  "CMakeFiles/pcqe_engine.dir/pcqe_engine.cc.o"
  "CMakeFiles/pcqe_engine.dir/pcqe_engine.cc.o.d"
  "libpcqe_engine.a"
  "libpcqe_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
