file(REMOVE_RECURSE
  "libpcqe_relational.a"
)
