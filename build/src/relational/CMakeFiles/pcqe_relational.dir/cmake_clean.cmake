file(REMOVE_RECURSE
  "CMakeFiles/pcqe_relational.dir/catalog.cc.o"
  "CMakeFiles/pcqe_relational.dir/catalog.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/csv.cc.o"
  "CMakeFiles/pcqe_relational.dir/csv.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/database_io.cc.o"
  "CMakeFiles/pcqe_relational.dir/database_io.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/schema.cc.o"
  "CMakeFiles/pcqe_relational.dir/schema.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/table.cc.o"
  "CMakeFiles/pcqe_relational.dir/table.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/tuple.cc.o"
  "CMakeFiles/pcqe_relational.dir/tuple.cc.o.d"
  "CMakeFiles/pcqe_relational.dir/value.cc.o"
  "CMakeFiles/pcqe_relational.dir/value.cc.o.d"
  "libpcqe_relational.a"
  "libpcqe_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
