# Empty compiler generated dependencies file for pcqe_relational.
# This may be replaced when dependencies are built.
