# Empty compiler generated dependencies file for pcqe_workload.
# This may be replaced when dependencies are built.
