file(REMOVE_RECURSE
  "libpcqe_workload.a"
)
