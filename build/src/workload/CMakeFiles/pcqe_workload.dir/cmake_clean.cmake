file(REMOVE_RECURSE
  "CMakeFiles/pcqe_workload.dir/generator.cc.o"
  "CMakeFiles/pcqe_workload.dir/generator.cc.o.d"
  "libpcqe_workload.a"
  "libpcqe_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
