
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/confidence_policy.cc" "src/policy/CMakeFiles/pcqe_policy.dir/confidence_policy.cc.o" "gcc" "src/policy/CMakeFiles/pcqe_policy.dir/confidence_policy.cc.o.d"
  "/root/repo/src/policy/policy_io.cc" "src/policy/CMakeFiles/pcqe_policy.dir/policy_io.cc.o" "gcc" "src/policy/CMakeFiles/pcqe_policy.dir/policy_io.cc.o.d"
  "/root/repo/src/policy/rbac.cc" "src/policy/CMakeFiles/pcqe_policy.dir/rbac.cc.o" "gcc" "src/policy/CMakeFiles/pcqe_policy.dir/rbac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
