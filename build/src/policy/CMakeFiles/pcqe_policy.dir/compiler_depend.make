# Empty compiler generated dependencies file for pcqe_policy.
# This may be replaced when dependencies are built.
