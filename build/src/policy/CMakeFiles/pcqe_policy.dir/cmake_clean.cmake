file(REMOVE_RECURSE
  "CMakeFiles/pcqe_policy.dir/confidence_policy.cc.o"
  "CMakeFiles/pcqe_policy.dir/confidence_policy.cc.o.d"
  "CMakeFiles/pcqe_policy.dir/policy_io.cc.o"
  "CMakeFiles/pcqe_policy.dir/policy_io.cc.o.d"
  "CMakeFiles/pcqe_policy.dir/rbac.cc.o"
  "CMakeFiles/pcqe_policy.dir/rbac.cc.o.d"
  "libpcqe_policy.a"
  "libpcqe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
