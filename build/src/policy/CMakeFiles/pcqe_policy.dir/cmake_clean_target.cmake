file(REMOVE_RECURSE
  "libpcqe_policy.a"
)
