# Empty dependencies file for pcqe_assign.
# This may be replaced when dependencies are built.
