file(REMOVE_RECURSE
  "CMakeFiles/pcqe_assign.dir/assigner.cc.o"
  "CMakeFiles/pcqe_assign.dir/assigner.cc.o.d"
  "CMakeFiles/pcqe_assign.dir/provenance.cc.o"
  "CMakeFiles/pcqe_assign.dir/provenance.cc.o.d"
  "CMakeFiles/pcqe_assign.dir/trust_model.cc.o"
  "CMakeFiles/pcqe_assign.dir/trust_model.cc.o.d"
  "libpcqe_assign.a"
  "libpcqe_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
