file(REMOVE_RECURSE
  "libpcqe_assign.a"
)
