file(REMOVE_RECURSE
  "CMakeFiles/pcqe_cost.dir/cost_function.cc.o"
  "CMakeFiles/pcqe_cost.dir/cost_function.cc.o.d"
  "libpcqe_cost.a"
  "libpcqe_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
