# Empty dependencies file for pcqe_cost.
# This may be replaced when dependencies are built.
