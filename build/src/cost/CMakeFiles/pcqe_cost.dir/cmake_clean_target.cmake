file(REMOVE_RECURSE
  "libpcqe_cost.a"
)
