# Empty dependencies file for pcqe_common.
# This may be replaced when dependencies are built.
