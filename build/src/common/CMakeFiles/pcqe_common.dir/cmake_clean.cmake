file(REMOVE_RECURSE
  "CMakeFiles/pcqe_common.dir/random.cc.o"
  "CMakeFiles/pcqe_common.dir/random.cc.o.d"
  "CMakeFiles/pcqe_common.dir/status.cc.o"
  "CMakeFiles/pcqe_common.dir/status.cc.o.d"
  "CMakeFiles/pcqe_common.dir/string_util.cc.o"
  "CMakeFiles/pcqe_common.dir/string_util.cc.o.d"
  "libpcqe_common.a"
  "libpcqe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
