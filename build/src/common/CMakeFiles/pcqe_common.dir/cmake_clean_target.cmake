file(REMOVE_RECURSE
  "libpcqe_common.a"
)
