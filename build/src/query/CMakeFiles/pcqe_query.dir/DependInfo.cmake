
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/pcqe_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/executor.cc.o.d"
  "/root/repo/src/query/expression.cc" "src/query/CMakeFiles/pcqe_query.dir/expression.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/expression.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/pcqe_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/pcqe_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/parser.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/query/CMakeFiles/pcqe_query.dir/plan.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/plan.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/query/CMakeFiles/pcqe_query.dir/planner.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/planner.cc.o.d"
  "/root/repo/src/query/query_engine.cc" "src/query/CMakeFiles/pcqe_query.dir/query_engine.cc.o" "gcc" "src/query/CMakeFiles/pcqe_query.dir/query_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcqe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/pcqe_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/pcqe_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/pcqe_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
