file(REMOVE_RECURSE
  "libpcqe_query.a"
)
