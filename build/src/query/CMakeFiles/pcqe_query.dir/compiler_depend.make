# Empty compiler generated dependencies file for pcqe_query.
# This may be replaced when dependencies are built.
