file(REMOVE_RECURSE
  "CMakeFiles/pcqe_query.dir/executor.cc.o"
  "CMakeFiles/pcqe_query.dir/executor.cc.o.d"
  "CMakeFiles/pcqe_query.dir/expression.cc.o"
  "CMakeFiles/pcqe_query.dir/expression.cc.o.d"
  "CMakeFiles/pcqe_query.dir/lexer.cc.o"
  "CMakeFiles/pcqe_query.dir/lexer.cc.o.d"
  "CMakeFiles/pcqe_query.dir/parser.cc.o"
  "CMakeFiles/pcqe_query.dir/parser.cc.o.d"
  "CMakeFiles/pcqe_query.dir/plan.cc.o"
  "CMakeFiles/pcqe_query.dir/plan.cc.o.d"
  "CMakeFiles/pcqe_query.dir/planner.cc.o"
  "CMakeFiles/pcqe_query.dir/planner.cc.o.d"
  "CMakeFiles/pcqe_query.dir/query_engine.cc.o"
  "CMakeFiles/pcqe_query.dir/query_engine.cc.o.d"
  "libpcqe_query.a"
  "libpcqe_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
