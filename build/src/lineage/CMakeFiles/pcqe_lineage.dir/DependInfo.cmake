
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lineage/evaluate.cc" "src/lineage/CMakeFiles/pcqe_lineage.dir/evaluate.cc.o" "gcc" "src/lineage/CMakeFiles/pcqe_lineage.dir/evaluate.cc.o.d"
  "/root/repo/src/lineage/lineage.cc" "src/lineage/CMakeFiles/pcqe_lineage.dir/lineage.cc.o" "gcc" "src/lineage/CMakeFiles/pcqe_lineage.dir/lineage.cc.o.d"
  "/root/repo/src/lineage/sensitivity.cc" "src/lineage/CMakeFiles/pcqe_lineage.dir/sensitivity.cc.o" "gcc" "src/lineage/CMakeFiles/pcqe_lineage.dir/sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
