file(REMOVE_RECURSE
  "CMakeFiles/pcqe_lineage.dir/evaluate.cc.o"
  "CMakeFiles/pcqe_lineage.dir/evaluate.cc.o.d"
  "CMakeFiles/pcqe_lineage.dir/lineage.cc.o"
  "CMakeFiles/pcqe_lineage.dir/lineage.cc.o.d"
  "CMakeFiles/pcqe_lineage.dir/sensitivity.cc.o"
  "CMakeFiles/pcqe_lineage.dir/sensitivity.cc.o.d"
  "libpcqe_lineage.a"
  "libpcqe_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcqe_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
