file(REMOVE_RECURSE
  "libpcqe_lineage.a"
)
