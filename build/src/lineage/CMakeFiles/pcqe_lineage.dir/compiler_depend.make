# Empty compiler generated dependencies file for pcqe_lineage.
# This may be replaced when dependencies are built.
