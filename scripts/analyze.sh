#!/usr/bin/env bash
# Deep correctness pass, slower than scripts/check.sh:
#   1. lint (pcqe_lint.py self-test + repo sweep)
#   2. full test suite under ASan+UBSan (fails on any sanitizer report:
#      -fno-sanitize-recover=all turns every report into a test failure)
#   3. the concurrent tests under TSan — ASan and TSan cannot be combined in
#      one binary, so the data-race check is its own build tree scoped to the
#      tests that actually exercise threads: the service layer plus the
#      parallel-solver suite (thread pool, D&C fan-out, shared B&B incumbent)
#      and the fault-injection suite (error/deadline paths under workers)
#   4. a second configure with the GCC static analyzer (-fanalyzer) and
#      -Werror, so any analyzer diagnostic fails the build
# Usage: scripts/analyze.sh
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then GENERATOR_ARGS=(-G Ninja); fi

# An existing tree keeps its generator; re-specifying a different one errors
# (same policy as scripts/check.sh). Echoes e.g. "-G Ninja" for fresh trees;
# call sites expand unquoted on purpose.
generator_args_for() {
  if [[ -f "$1/CMakeCache.txt" ]]; then return; fi
  printf '%s' "${GENERATOR_ARGS[*]}"
}

echo "== [1/4] lint"
scripts/lint.sh

echo "== [2/4] ASan+UBSan test suite"
cmake -B build-asan -S . $(generator_args_for build-asan) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_SANITIZE="address;undefined" \
  -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-asan -j"$(nproc)"
ctest --test-dir build-asan -j"$(nproc)" --output-on-failure

echo "== [3/4] TSan concurrency tests"
cmake -B build-tsan -S . $(generator_args_for build-tsan) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_SANITIZE=thread \
  -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j"$(nproc)" \
  --target service_test service_stress_test parallel_solver_test \
           fault_injection_test
ctest --test-dir build-tsan \
  -R '^(service_test|service_stress_test|parallel_solver_test|fault_injection_test)$' \
  --output-on-failure

echo "== [4/4] GCC static analyzer (-fanalyzer -Werror)"
# Analyze the library and tools only: gtest/benchmark headers are not ours
# and -fanalyzer over them is slow and noisy.
cmake -B build-analyzer -S . $(generator_args_for build-analyzer) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_ANALYZER=ON -DPCQE_WERROR=ON \
  -DPCQE_BUILD_TESTS=OFF -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-analyzer -j"$(nproc)"

echo "analyze: lint, sanitizers, data-race check, and static analyzer all clean"
