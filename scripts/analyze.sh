#!/usr/bin/env bash
# Deep correctness pass, slower than scripts/check.sh:
#   1. lint (pcqe_lint.py self-test + repo sweep)
#   2. full test suite under ASan+UBSan (fails on any sanitizer report:
#      -fno-sanitize-recover=all turns every report into a test failure)
#   3. the concurrent tests under TSan — ASan and TSan cannot be combined in
#      one binary, so the data-race check is its own build tree scoped to the
#      tests that actually exercise threads: the service layer plus the
#      parallel-solver suite (thread pool, D&C fan-out, shared B&B incumbent)
#      and the fault-injection suite (error/deadline paths under workers)
#   4. a second configure with the GCC static analyzer (-fanalyzer) and
#      -Werror, so any analyzer diagnostic fails the build
#   5. clang Thread Safety Analysis (-Wthread-safety -Werror) over the
#      library and tools — the compile-time lock-discipline gate — plus the
#      negative-compile fixture check. Skipped with a notice when clang is
#      not installed; TSan (leg 3) still covers the dynamic side.
#   6. clang-tidy (bugprone/concurrency/performance checks from the repo
#      .clang-tidy) over src/ and tools/. Skipped when absent.
# Usage: scripts/analyze.sh
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then GENERATOR_ARGS=(-G Ninja); fi

# An existing tree keeps its generator; re-specifying a different one errors
# (same policy as scripts/check.sh). Echoes e.g. "-G Ninja" for fresh trees;
# call sites expand unquoted on purpose.
generator_args_for() {
  if [[ -f "$1/CMakeCache.txt" ]]; then return; fi
  printf '%s' "${GENERATOR_ARGS[*]}"
}

# First clang/clang++ pair on PATH, trying bare names then versioned ones.
find_clang() {
  local cxx
  for cxx in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15 \
      clang++-14; do
    if command -v "$cxx" > /dev/null 2>&1; then
      printf '%s' "$cxx"
      return 0
    fi
  done
  return 1
}

echo "== [1/6] lint"
scripts/lint.sh

echo "== [2/6] ASan+UBSan test suite"
cmake -B build-asan -S . $(generator_args_for build-asan) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_SANITIZE="address;undefined" \
  -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-asan -j"$(nproc)"
ctest --test-dir build-asan -j"$(nproc)" --output-on-failure

echo "== [3/6] TSan concurrency tests"
cmake -B build-tsan -S . $(generator_args_for build-tsan) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_SANITIZE=thread \
  -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j"$(nproc)" \
  --target service_test service_stress_test parallel_solver_test \
           fault_injection_test
ctest --test-dir build-tsan \
  -R '^(service_test|service_stress_test|parallel_solver_test|fault_injection_test)$' \
  --output-on-failure

echo "== [4/6] GCC static analyzer (-fanalyzer -Werror)"
# Analyze the library and tools only: gtest/benchmark headers are not ours
# and -fanalyzer over them is slow and noisy.
cmake -B build-analyzer -S . $(generator_args_for build-analyzer) \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_ANALYZER=ON -DPCQE_WERROR=ON \
  -DPCQE_BUILD_TESTS=OFF -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-analyzer -j"$(nproc)"

echo "== [5/6] clang thread-safety analysis (-Wthread-safety -Werror)"
if CLANG_CXX=$(find_clang); then
  # Library and tools only, mirroring the -fanalyzer leg: the annotations
  # live in src/ and tools/; tests and benches are single-threaded callers
  # outside the analyzed locking discipline.
  cmake -B build-tsa -S . $(generator_args_for build-tsa) \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPCQE_THREAD_SAFETY=ON -DPCQE_WERROR=ON \
    -DPCQE_BUILD_TESTS=OFF -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
  cmake --build build-tsa -j"$(nproc)"
  # Fixture gate: each bad_*.cc must be rejected, each good_*.cc accepted.
  tests/thread_safety_compile_test.sh src tests/thread_safety "$CLANG_CXX"
else
  echo "SKIP: clang not installed; thread-safety analysis not run" \
       "(the annotations are no-ops under GCC — install clang to verify the" \
       "lock discipline at compile time)"
fi

echo "== [6/6] clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  # clang-tidy needs a compilation database; reuse the TSA tree if clang was
  # found above, else generate one with the default compiler.
  TIDY_BUILD=build-tsa
  if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
    TIDY_BUILD=build-tidy
    cmake -B "$TIDY_BUILD" -S . $(generator_args_for "$TIDY_BUILD") \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DPCQE_BUILD_TESTS=OFF -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
  fi
  find src tools -name '*.cc' -print0 |
    xargs -0 clang-tidy -p "$TIDY_BUILD" --warnings-as-errors='*' --quiet
else
  echo "SKIP: clang-tidy not installed"
fi

echo "analyze: lint, sanitizers, data-race check, and static analyzers all clean"
