#!/usr/bin/env bash
# Deep correctness pass, slower than scripts/check.sh:
#   1. lint (pcqe_lint.py self-test + repo sweep)
#   2. full test suite under ASan+UBSan (fails on any sanitizer report:
#      -fno-sanitize-recover=all turns every report into a test failure)
#   3. a second configure with the GCC static analyzer (-fanalyzer) and
#      -Werror, so any analyzer diagnostic fails the build
# Usage: scripts/analyze.sh
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then GENERATOR_ARGS=(-G Ninja); fi

echo "== [1/3] lint"
scripts/lint.sh

echo "== [2/3] ASan+UBSan test suite"
cmake -B build-asan -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_SANITIZE="address;undefined" \
  -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-asan -j"$(nproc)"
ctest --test-dir build-asan -j"$(nproc)" --output-on-failure

echo "== [3/3] GCC static analyzer (-fanalyzer -Werror)"
# Analyze the library and tools only: gtest/benchmark headers are not ours
# and -fanalyzer over them is slow and noisy.
cmake -B build-analyzer -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPCQE_ANALYZER=ON -DPCQE_WERROR=ON \
  -DPCQE_BUILD_TESTS=OFF -DPCQE_BUILD_BENCHMARKS=OFF -DPCQE_BUILD_EXAMPLES=OFF
cmake --build build-analyzer -j"$(nproc)"

echo "analyze: lint, sanitizers, and static analyzer all clean"
