#!/usr/bin/env bash
# Full local check: lint, configure, build, test, smoke-run examples and benches.
# Usage: scripts/check.sh [--full]   (--full runs benches at paper scale)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=quick
if [[ "${1:-}" == "--full" ]]; then SCALE=paper; fi

scripts/lint.sh

# Share one build tree with the tier-1 path: use Ninja when available, else
# whatever CMake picks by default (Makefiles).
GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then GENERATOR_ARGS=(-G Ninja); fi
if [[ -f build/CMakeCache.txt ]]; then
  # An existing tree keeps its generator; re-specifying a different one errors.
  GENERATOR_ARGS=()
fi

cmake -B build "${GENERATOR_ARGS[@]}"
cmake --build build -j"$(nproc)"
ctest --test-dir build -j"$(nproc)" --output-on-failure

for example in build/examples/*; do
  [[ -f "$example" && -x "$example" ]] || continue
  echo "== example: $example"
  "$example" > /dev/null
done

# Telemetry smoke: the shell must expose a parseable metrics page and record
# a trace for a served query.
echo "== shell: .metrics smoke"
METRICS_OUT=$(printf '.metrics\n.quit\n' | build/tools/pcqe_shell)
echo "$METRICS_OUT" | grep -q "pcqe_engine_queries_total" \
  || { echo ".metrics smoke failed: no pcqe_engine_queries_total in output"; exit 1; }

# Vectorized smoke: the same SQL through .exec row and .exec vec must print
# byte-identical tables (the row engine is the differential reference).
echo "== shell: vectorized differential smoke"
SMOKE_CSV=$(mktemp)
cat > "$SMOKE_CSV" <<'EOF'
id,amount,conf
1,50.5,0.9
2,120.0,0.4
3,75.25,0.7
4,300.0,0.85
5,120.0,0.4
EOF
SMOKE_SQL='SELECT id, amount FROM t WHERE amount < 200.0 ORDER BY amount DESC, id;'
run_shell_mode() {
  printf '.load t %s conf\n.exec %s\n%s\n.quit\n' "$SMOKE_CSV" "$1" "$SMOKE_SQL" \
    | build/tools/pcqe_shell | grep -v "execution mode"
}
ROW_OUT=$(run_shell_mode row)
VEC_OUT=$(run_shell_mode vec)
rm -f "$SMOKE_CSV"
echo "$ROW_OUT" | grep -q "4 row(s)" \
  || { echo "vectorized smoke failed: query returned no rows"; echo "$ROW_OUT"; exit 1; }
[[ "$ROW_OUT" == "$VEC_OUT" ]] \
  || { echo "vectorized smoke failed: row/vec outputs differ"; \
       diff <(echo "$ROW_OUT") <(echo "$VEC_OUT") || true; exit 1; }

# Observability smoke: `.explain analyze json` must report a profiled
# operator tree and `.audit json` must reconstruct the policy decision —
# without ever exporting a blocked value. Rendered JSON is kept under
# build/observability_smoke/ (CI uploads it as an artifact).
echo "== shell: .explain analyze / .audit smoke"
OBS_DIR=build/observability_smoke
mkdir -p "$OBS_DIR"
OBS_CSV=$(mktemp)
cat > "$OBS_CSV" <<'EOF'
id,secret,conf
1,ssn-111-22-3333,0.9
2,ssn-444-55-6666,0.2
3,ssn-777-88-9999,0.7
EOF
printf '.load t %s conf\n.explain analyze json SELECT id FROM t WHERE id > 1\n.quit\n' "$OBS_CSV" \
  | build/tools/pcqe_shell | grep -o '{"mode".*}' > "$OBS_DIR/explain.json"
grep -q '"operators"' "$OBS_DIR/explain.json" \
  || { echo "explain smoke failed: no operators in $OBS_DIR/explain.json"; exit 1; }
printf '.load t %s conf\n.role add R\n.user add u\n.role grant u R\n.policy add R general 0.5\n.user use u\nSELECT id, secret FROM t;\n.audit json\n.quit\n' "$OBS_CSV" \
  | build/tools/pcqe_shell | grep -o '{"audit".*}' > "$OBS_DIR/audit.json"
rm -f "$OBS_CSV"
grep -q '"kind":"query"' "$OBS_DIR/audit.json" \
  || { echo "audit smoke failed: no query record in $OBS_DIR/audit.json"; exit 1; }
grep -q '"released":false' "$OBS_DIR/audit.json" \
  || { echo "audit smoke failed: no blocked row recorded"; exit 1; }
# Privacy contract: the blocked row's value must never appear in the export.
if grep -q 'ssn-444-55-6666' "$OBS_DIR/audit.json"; then
  echo "audit smoke failed: blocked value leaked into the audit export"
  exit 1
fi

for bench in build/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  echo "== bench: $bench"
  if [[ "$bench" == *micro_* ]]; then
    PCQE_BENCH_SCALE=$SCALE "$bench" --benchmark_min_time=0.01 > /dev/null
  else
    PCQE_BENCH_SCALE=$SCALE "$bench" > /dev/null
  fi
done

echo "all checks passed (scale=$SCALE)"
