#!/usr/bin/env bash
# Full local check: configure, build, test, smoke-run examples and benches.
# Usage: scripts/check.sh [--full]   (--full runs benches at paper scale)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=quick
if [[ "${1:-}" == "--full" ]]; then SCALE=paper; fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

for example in build/examples/*; do
  [[ -f "$example" && -x "$example" ]] || continue
  echo "== example: $example"
  "$example" > /dev/null
done

for bench in build/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  echo "== bench: $bench"
  if [[ "$bench" == *micro_* ]]; then
    PCQE_BENCH_SCALE=$SCALE "$bench" --benchmark_min_time=0.01 > /dev/null
  else
    PCQE_BENCH_SCALE=$SCALE "$bench" > /dev/null
  fi
done

echo "all checks passed (scale=$SCALE)"
