#!/usr/bin/env bash
# Run the repo linter (tools/pcqe_lint.py): repo sweep + fixture self-test.
# Usage: scripts/lint.sh [extra pcqe_lint.py args]
set -euo pipefail
cd "$(dirname "$0")/.."

python3 tools/pcqe_lint.py --self-test
python3 tools/pcqe_lint.py "$@"
