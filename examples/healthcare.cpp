// Healthcare scenario from the paper's introduction (after Malin et al.):
// cancer-registry and administrative data are cheap, patient/physician
// survey data cost more, and medical-record abstraction is the most
// expensive but most accurate source.
//
// Two tasks over the same data need different confidence levels:
//  - hypothesis generation ("identifying areas for further research")
//    tolerates medium confidence;
//  - treatment-effectiveness evaluation requires high confidence.
//
// This example builds a small oncology database from the three source
// tiers, declares per-purpose policies, and shows the researcher passing
// where the clinician is blocked — plus the cheapest acquisition plan that
// unblocks the clinician (which favors upgrading registry/survey records
// over pulling full medical records when possible).

#include <cstdio>

#include "engine/pcqe_engine.h"

using namespace pcqe;

namespace {

struct SourceTier {
  const char* name;
  double confidence;        // typical trust of the source
  CostFunctionPtr cost;     // price of further verification
};

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

}  // namespace

int main() {
  // Acquisition economics per source tier: registry upgrades are cheap,
  // surveys moderate, medical-record abstraction steeply expensive.
  SourceTier registry{"registry", 0.45, *MakeLinearCost(40.0)};
  SourceTier survey{"survey", 0.55, *MakeLinearCost(120.0)};
  SourceTier records{"medical_records", 0.85, *MakeExponentialCost(80.0, 3.0)};

  Catalog catalog;
  Table* treatments = *catalog.CreateTable(
      "treatments", Schema({{"patient", DataType::kInt64, ""},
                            {"regimen", DataType::kString, ""},
                            {"source", DataType::kString, ""}}));
  Table* outcomes = *catalog.CreateTable(
      "outcomes", Schema({{"patient", DataType::kInt64, ""},
                          {"response", DataType::kString, ""},
                          {"source", DataType::kString, ""}}));

  // Twelve patients; treatment rows and outcome rows drawn from mixed
  // sources. (In a real deployment confidences come from a provenance-based
  // assignment component; here they are the tier defaults.)
  const SourceTier* tiers[] = {&registry, &survey, &records};
  for (int64_t patient = 0; patient < 12; ++patient) {
    const SourceTier& t_tier = *tiers[patient % 3];
    const SourceTier& o_tier = *tiers[(patient + 1) % 3];
    (void)*treatments->Insert(
        {Value::Int(patient), Value::String(patient % 2 ? "chemo-A" : "chemo-B"),
         Value::String(t_tier.name)},
        t_tier.confidence, t_tier.cost);
    (void)*outcomes->Insert(
        {Value::Int(patient), Value::String(patient % 4 ? "responded" : "progressed"),
         Value::String(o_tier.name)},
        o_tier.confidence, o_tier.cost);
  }

  RoleGraph roles;
  (void)roles.AddRole("Researcher");
  (void)roles.AddRole("Oncologist");
  (void)roles.AddUser("rhea");
  (void)roles.AddUser("omar");
  (void)roles.AssignRole("rhea", "Researcher");
  (void)roles.AssignRole("omar", "Oncologist");
  PolicyStore policies;
  // Hypothesis generation tolerates medium confidence...
  (void)policies.AddPolicy(roles, {"Researcher", "hypothesis_generation", 0.2});
  // ...treatment evaluation needs to be sure of the joined evidence.
  (void)policies.AddPolicy(roles, {"Oncologist", "treatment_evaluation", 0.45});

  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  const char* kEvidenceQuery =
      "SELECT t.patient, t.regimen, o.response "
      "FROM treatments AS t JOIN outcomes AS o ON t.patient = o.patient";

  Banner("Researcher: hypothesis generation (beta = 0.2)");
  QueryOutcome research =
      *engine.Submit({kEvidenceQuery, "rhea", "hypothesis_generation", 0.8});
  std::printf("released %zu of %zu treatment-outcome pairs\n", research.released.size(),
              research.intermediate.rows.size());
  std::printf("%s", research.ReleasedTable(6).c_str());
  if (!research.proposal.needed) {
    std::printf("=> medium-confidence data suffices; no acquisition needed\n");
  }

  Banner("Oncologist: treatment evaluation (beta = 0.45)");
  QueryOutcome clinical =
      *engine.Submit({kEvidenceQuery, "omar", "treatment_evaluation", 0.75});
  std::printf("released %zu of %zu pairs; needs 75%%\n", clinical.released.size(),
              clinical.intermediate.rows.size());
  if (clinical.proposal.needed) {
    std::printf("acquisition plan (%s): %zu upgrades, total cost %.1f\n",
                clinical.proposal.algorithm.c_str(), clinical.proposal.actions.size(),
                clinical.proposal.total_cost);
    // Which tiers does the optimizer choose to upgrade?
    double registry_spend = 0, survey_spend = 0, records_spend = 0;
    for (const IncrementAction& a : clinical.proposal.actions) {
      const Tuple* t = *catalog.FindTuple(a.base_tuple);
      std::string source = *t->values().back().AsString();
      if (source == "registry") registry_spend += a.cost;
      if (source == "survey") survey_spend += a.cost;
      if (source == "medical_records") records_spend += a.cost;
    }
    std::printf("  spend by source: registry %.1f, survey %.1f, medical records %.1f\n",
                registry_spend, survey_spend, records_spend);
    std::printf("  (cheap tiers absorb the spend; record abstraction is a last resort)\n");

    if (Status s = engine.AcceptProposal(clinical.proposal); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    QueryOutcome after =
        *engine.Submit({kEvidenceQuery, "omar", "treatment_evaluation", 0.75});
    std::printf("after acquisition: released %zu of %zu pairs\n", after.released.size(),
                after.intermediate.rows.size());
  }
  return 0;
}
