// The paper's §3.1 running example as a guided walk-through.
//
// A venture-capital firm keeps Proposal and CompanyInfo relations with
// per-tuple confidence values. The "Candidate" query joins companies asking
// for under one million dollars with their financial information:
//
//   Candidate = (Π_company σ_{Funding<1M}(Proposal)) ⋈ CompanyInfo
//
// Duplicate elimination merges the two BlueSky proposals into one derivation
// with confidence p25 = p02 + p03 − p02·p03 = 0.58, and the join gives the
// final tuple confidence p38 = p25 · p13 = 0.058.
//
// Policy P1 <Secretary, analysis, 0.05> admits the result; policy
// P2 <Manager, investment, 0.06> blocks it. The strategy-finding component
// then compares raising tuple 02 (cost 100 per 0.1) against raising tuple 03
// (cost 10 per 0.1) and proposes the cheap alternative.

#include <cstdio>

#include "engine/pcqe_engine.h"

using namespace pcqe;

namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

void Banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  Banner("Tables 1 and 2: base data with confidence values");
  Catalog catalog;
  Table* proposal = *catalog.CreateTable(
      "Proposal", Schema({{"company", DataType::kString, ""},
                          {"proposal", DataType::kString, ""},
                          {"funding", DataType::kDouble, ""}}));
  // Tuple ids mirror the paper's numbering in spirit: 01..04 in Proposal.
  (void)*proposal->Insert(
      {Value::String("AlphaTech"), Value::String("expansion"), Value::Double(2e6)}, 0.5);
  BaseTupleId id02 = *proposal->Insert(
      {Value::String("BlueSky"), Value::String("marketing"), Value::Double(8e5)}, 0.3,
      *MakeLinearCost(1000.0));  // raising by 0.1 costs 100
  BaseTupleId id03 = *proposal->Insert(
      {Value::String("BlueSky"), Value::String("research"), Value::Double(5e5)}, 0.4,
      *MakeLinearCost(100.0));  // raising by 0.1 costs 10
  (void)*proposal->Insert(
      {Value::String("Cyclone"), Value::String("tooling"), Value::Double(1.5e6)}, 0.7);

  Table* info = *catalog.CreateTable(
      "CompanyInfo",
      Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
  (void)*info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8);
  (void)*info->Insert({Value::String("Cyclone"), Value::Double(1.5e5)}, 0.9);
  BaseTupleId id13 = *info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                                   *MakeLinearCost(10000.0));

  for (const Tuple& t : proposal->tuples()) std::printf("Proposal    %s\n", t.ToString().c_str());
  for (const Tuple& t : info->tuples()) std::printf("CompanyInfo %s\n", t.ToString().c_str());

  Banner("Policies P1 and P2");
  RoleGraph roles;
  (void)roles.AddRole("Secretary");
  (void)roles.AddRole("Manager");
  (void)roles.AddUser("sam");
  (void)roles.AddUser("mary");
  (void)roles.AssignRole("sam", "Secretary");
  (void)roles.AssignRole("mary", "Manager");
  PolicyStore policies;
  (void)policies.AddPolicy(roles, {"Secretary", "analysis", 0.05});
  (void)policies.AddPolicy(roles, {"Manager", "investment", 0.06});
  for (const ConfidencePolicy& p : policies.policies()) {
    std::printf("%s\n", p.ToString().c_str());
  }

  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  Banner("The Candidate query and its lineage-computed confidence");
  QueryOutcome sam = *engine.Submit({kCandidateQuery, "sam", "analysis", 1.0});
  std::printf("%s", sam.intermediate.ToTable().c_str());
  std::printf("lineage: %s\n",
              sam.intermediate.arena->ToString(sam.intermediate.rows[0].lineage).c_str());
  std::printf("secretary sam (P1, beta=0.05): released %zu/%zu -> 0.058 > 0.05\n",
              sam.released.size(), sam.intermediate.rows.size());

  Banner("The manager is blocked and gets a costed proposal");
  QueryOutcome mary = *engine.Submit({kCandidateQuery, "mary", "investment", 1.0});
  std::printf("manager mary (P2, beta=0.06): released %zu/%zu -> 0.058 < 0.06\n",
              mary.released.size(), mary.intermediate.rows.size());
  std::printf("alternatives the paper weighs:\n");
  std::printf("  tuple %llu (p=0.3, +0.1 costs 100) -> p38 = 0.064\n",
              static_cast<unsigned long long>(id02));
  std::printf("  tuple %llu (p=0.4, +0.1 costs  10) -> p38 = 0.065  <= cheaper\n",
              static_cast<unsigned long long>(id03));
  std::printf("  tuple %llu (p=0.1, +0.1 costs 1000) -> p38 = 0.116\n",
              static_cast<unsigned long long>(id13));
  std::printf("engine proposal (%s): cost %.1f\n", mary.proposal.algorithm.c_str(),
              mary.proposal.total_cost);
  for (const IncrementAction& a : mary.proposal.actions) {
    std::printf("  raise tuple %llu: %.2f -> %.2f (cost %.1f)\n",
                static_cast<unsigned long long>(a.base_tuple), a.from, a.to, a.cost);
  }

  Banner("Accept, improve data quality, and re-query");
  if (Status s = engine.AcceptProposal(mary.proposal); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  QueryOutcome after = *engine.Submit({kCandidateQuery, "mary", "investment", 1.0});
  std::printf("released %zu row(s):\n%s", after.released.size(),
              after.ReleasedTable().c_str());
  std::printf("improvement audit log: %zu change(s), total spend %.1f\n",
              engine.improver().log().size(), engine.improver().total_cost_spent());
  return 0;
}
