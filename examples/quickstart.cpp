// Quickstart: the PCQE pipeline in ~80 lines.
//
//   1. build a confidence-annotated database;
//   2. declare roles and confidence policies <role, purpose, beta>;
//   3. submit a SQL query through the engine;
//   4. if the policy filters too much, inspect the costed improvement
//      proposal, accept it, and re-query.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "engine/pcqe_engine.h"

using namespace pcqe;

int main() {
  // --- 1. Data with confidence values and acquisition-cost models. -------
  Catalog catalog;
  Table* sensors = *catalog.CreateTable(
      "sensors", Schema({{"site", DataType::kString, ""},
                         {"reading", DataType::kDouble, ""}}));
  // Each tuple: values, confidence, cost function (price of re-validating).
  (void)*sensors->Insert({Value::String("north"), Value::Double(42.0)}, 0.9,
                         *MakeLinearCost(50.0));
  (void)*sensors->Insert({Value::String("south"), Value::Double(17.0)}, 0.35,
                         *MakeLinearCost(20.0));
  (void)*sensors->Insert({Value::String("east"), Value::Double(29.5)}, 0.4,
                         *MakeExponentialCost(5.0, 2.0));

  // --- 2. RBAC + confidence policies. ------------------------------------
  RoleGraph roles;
  (void)roles.AddRole("Analyst");
  (void)roles.AddUser("alice");
  (void)roles.AssignRole("alice", "Analyst");
  PolicyStore policies;
  // Alice may only use readings with confidence above 0.5 for reporting.
  (void)policies.AddPolicy(roles, {"Analyst", "reporting", 0.5});

  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  // --- 3. Query through the engine. ---------------------------------------
  QueryRequest request;
  request.sql = "SELECT site, reading FROM sensors WHERE reading > 10";
  request.user = "alice";
  request.purpose = "reporting";
  request.required_fraction = 1.0;  // alice wants every matching row

  QueryOutcome outcome = *engine.Submit(request);
  std::printf("policy threshold beta = %.2f\n", outcome.policy.threshold);
  std::printf("released %zu of %zu rows:\n%s\n", outcome.released.size(),
              outcome.intermediate.rows.size(), outcome.ReleasedTable().c_str());

  // --- 4. Not enough? The engine already computed the cheapest fix. -------
  if (outcome.proposal.needed) {
    std::printf("improvement proposal (%s, total cost %.2f):\n",
                outcome.proposal.algorithm.c_str(), outcome.proposal.total_cost);
    for (const IncrementAction& a : outcome.proposal.actions) {
      std::printf("  raise tuple %llu from %.2f to %.2f (cost %.2f)\n",
                  static_cast<unsigned long long>(a.base_tuple), a.from, a.to, a.cost);
    }
    // The user accepts: the improvement component updates the database.
    if (Status s = engine.AcceptProposal(outcome.proposal); !s.ok()) {
      std::fprintf(stderr, "apply failed: %s\n", s.ToString().c_str());
      return 1;
    }
    QueryOutcome after = *engine.Submit(request);
    std::printf("\nafter improvement, released %zu of %zu rows:\n%s",
                after.released.size(), after.intermediate.rows.size(),
                after.ReleasedTable().c_str());
  }
  return 0;
}
