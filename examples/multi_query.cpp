// Multi-query strategy finding (the §4 extension): several queries issued
// within a short period share one improvement plan.
//
// Two analysts' dashboards hit overlapping base data. Improving a shared
// supplier record once can unblock results of *both* queries, so solving the
// combined problem is cheaper than improving per query. The engine's
// SubmitBatch poses one increment problem whose feasibility constraint is
// per query ("check whether a solution is found for all queries").

#include <cstdio>

#include "engine/pcqe_engine.h"

using namespace pcqe;

int main() {
  Catalog catalog;
  Table* suppliers = *catalog.CreateTable(
      "suppliers", Schema({{"supplier", DataType::kString, ""},
                           {"rating", DataType::kInt64, ""}}));
  Table* shipments = *catalog.CreateTable(
      "shipments", Schema({{"supplier", DataType::kString, ""},
                           {"item", DataType::kString, ""},
                           {"late", DataType::kInt64, ""}}));

  // The shared, low-confidence supplier master data (expensive-ish to fix).
  (void)*suppliers->Insert({Value::String("acme"), Value::Int(4)}, 0.3,
                           *MakeLinearCost(60.0));
  (void)*suppliers->Insert({Value::String("borg"), Value::Int(2)}, 0.35,
                           *MakeLinearCost(60.0));
  // Per-shipment rows, individually cheap but numerous.
  const char* items[] = {"bolts", "nuts", "gears", "belts"};
  for (int i = 0; i < 4; ++i) {
    (void)*shipments->Insert(
        {Value::String("acme"), Value::String(items[i]), Value::Int(i % 2)}, 0.5,
        *MakeLinearCost(25.0));
    (void)*shipments->Insert(
        {Value::String("borg"), Value::String(items[i]), Value::Int((i + 1) % 2)}, 0.5,
        *MakeLinearCost(25.0));
  }

  RoleGraph roles;
  (void)roles.AddRole("Procurement");
  (void)roles.AddUser("pia");
  (void)roles.AssignRole("pia", "Procurement");
  PolicyStore policies;
  (void)policies.AddPolicy(roles, {"Procurement", "vendor_review", 0.3});
  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  // Two queries whose lineages share the supplier tuples.
  QueryRequest q1;
  q1.sql =
      "SELECT s.supplier, sh.item FROM suppliers AS s JOIN shipments AS sh "
      "ON s.supplier = sh.supplier WHERE sh.late = 1";
  q1.user = "pia";
  q1.purpose = "vendor_review";
  q1.required_fraction = 0.75;

  QueryRequest q2 = q1;
  q2.sql =
      "SELECT s.supplier, s.rating, sh.item FROM suppliers AS s "
      "JOIN shipments AS sh ON s.supplier = sh.supplier WHERE s.rating < 5";

  std::printf("--- batched submission (shared improvement plan) ---\n");
  std::vector<QueryOutcome> outcomes = *engine.SubmitBatch({q1, q2});
  for (size_t i = 0; i < outcomes.size(); ++i) {
    std::printf("query %zu: released %zu of %zu (beta=%.2f)\n", i + 1,
                outcomes[i].released.size(), outcomes[i].intermediate.rows.size(),
                outcomes[i].policy.threshold);
  }

  const StrategyProposal& shared = outcomes[0].proposal;
  if (shared.needed) {
    std::printf("\nshared plan (%s): %zu increments, total cost %.1f\n",
                shared.algorithm.c_str(), shared.actions.size(), shared.total_cost);
    for (const IncrementAction& a : shared.actions) {
      const Tuple* t = *catalog.FindTuple(a.base_tuple);
      std::printf("  %-28s %.2f -> %.2f (cost %.1f)\n", t->ToString().c_str(), a.from,
                  a.to, a.cost);
    }

    // Compare against improving each query independently: re-solve each
    // query alone (nothing is applied yet) and sum the two plans.
    QueryOutcome alone1 = *engine.Submit(q1);
    QueryOutcome alone2 = *engine.Submit(q2);
    double separate_cost =
        (alone1.proposal.needed ? alone1.proposal.total_cost : 0.0) +
        (alone2.proposal.needed ? alone2.proposal.total_cost : 0.0);
    std::printf("\nsum of per-query plans: %.1f  vs  shared plan: %.1f\n", separate_cost,
                shared.total_cost);
    std::printf("(the shared plan never costs more: fixing a shared supplier row\n");
    std::printf(" counts toward both queries at once)\n");

    if (Status s = engine.AcceptProposal(shared); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\n--- after applying the shared plan ---\n");
    std::vector<QueryOutcome> after = *engine.SubmitBatch({q1, q2});
    for (size_t i = 0; i < after.size(); ++i) {
      std::printf("query %zu: released %zu of %zu\n", i + 1, after[i].released.size(),
                  after[i].intermediate.rows.size());
    }
  }
  return 0;
}
