// Confidence assignment from provenance + lead-time estimation.
//
// The paper assumes confidences exist (element 1 of its framework, citing
// Dai et al. 2008 for how to compute them) and leaves "how much time in
// advance must I query?" as future work. This example exercises both
// substrates:
//
//  1. Three market-data vendors report revenue figures for two companies;
//     one vendor disagrees wildly. The provenance trust model corroborates
//     the agreeing reports, erodes the outlier, and writes the resulting
//     confidences into the stored tuples.
//  2. An analyst's query is then policy-filtered; the engine proposes the
//     cheapest verification plan, and the lead-time estimator reports how
//     far in advance the query must be issued for one auditor vs a team.

#include <cstdio>

#include "assign/assigner.h"
#include "engine/pcqe_engine.h"
#include "improve/lead_time.h"

using namespace pcqe;

int main() {
  // --- The raw reports, stored with placeholder confidence 0. ------------
  Catalog catalog;
  Table* revenue = *catalog.CreateTable(
      "revenue", Schema({{"company", DataType::kString, ""},
                         {"vendor", DataType::kString, ""},
                         {"figure", DataType::kDouble, ""}}));

  struct Report {
    const char* company;
    const char* vendor;
    double figure;
  };
  const Report reports[] = {
      {"BlueSky", "alpha_data", 12.1}, {"BlueSky", "beta_feeds", 12.3},
      {"BlueSky", "gamma_wire", 29.0},  // the outlier
      {"Cyclone", "alpha_data", 7.5},  {"Cyclone", "beta_feeds", 7.4},
      {"Cyclone", "gamma_wire", 7.6},
  };

  // --- Provenance graph: vendors as sources, one relay hub. ---------------
  ProvenanceGraph graph;
  AgentId alpha = *graph.AddAgent({"alpha_data", 0.7, true});
  AgentId beta = *graph.AddAgent({"beta_feeds", 0.7, true});
  AgentId gamma = *graph.AddAgent({"gamma_wire", 0.7, true});
  AgentId hub = *graph.AddAgent({"aggregation_hub", 0.95, false});

  std::vector<TupleProvenance> mapping;
  for (const Report& r : reports) {
    BaseTupleId tuple = *revenue->Insert(
        {Value::String(r.company), Value::String(r.vendor), Value::Double(r.figure)},
        /*confidence=*/0.0, *MakeLinearCost(200.0));
    AgentId source = std::string(r.vendor) == "alpha_data"  ? alpha
                     : std::string(r.vendor) == "beta_feeds" ? beta
                                                             : gamma;
    ItemId item = *graph.AddItem({r.company, r.figure, source, {hub}});
    mapping.push_back({tuple, item});
  }

  // --- 1. Assign confidences from provenance. -----------------------------
  TrustModelOptions trust_options;
  trust_options.similarity_sigma = 2.0;  // figures within ~2 corroborate
  AssignmentReport assignment =
      *AssignConfidences(&catalog, graph, mapping, trust_options);
  std::printf("trust fixpoint converged after %zu iteration(s)\n",
              assignment.trust.iterations);
  std::printf("revised vendor trust: alpha=%.3f beta=%.3f gamma=%.3f\n",
              assignment.trust.agent_trust[alpha], assignment.trust.agent_trust[beta],
              assignment.trust.agent_trust[gamma]);
  for (const Tuple& t : revenue->tuples()) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  std::printf("(the gamma_wire BlueSky outlier ends well below its peers)\n\n");

  // --- 2. Policy-compliant query + lead time. ------------------------------
  RoleGraph roles;
  (void)roles.AddRole("Analyst");
  (void)roles.AddUser("ana");
  (void)roles.AssignRole("ana", "Analyst");
  PolicyStore policies;
  (void)policies.AddPolicy(roles, {"Analyst", "valuation", 0.75});
  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  QueryRequest request{"SELECT company, vendor, figure FROM revenue", "ana",
                       "valuation", 1.0};
  QueryOutcome outcome = *engine.Submit(request);
  std::printf("valuation query: %zu of %zu reports clear beta=0.75\n",
              outcome.released.size(), outcome.intermediate.rows.size());

  if (outcome.proposal.needed) {
    std::printf("verification plan (%s): %zu actions, cost %.1f\n",
                outcome.proposal.algorithm.c_str(), outcome.proposal.actions.size(),
                outcome.proposal.total_cost);

    // Each verification takes half a day of setup plus two days per unit
    // of confidence bought.
    LeadTimeEstimator estimator({/*fixed=*/0.5 * 86400, /*per unit=*/2.0 * 86400});
    double solo = *estimator.EstimateSeconds(outcome.proposal.actions, 1);
    double team = *estimator.EstimateSeconds(outcome.proposal.actions, 3);
    std::printf("lead time: %.1f days with one auditor, %.1f days with three\n",
                solo / 86400.0, team / 86400.0);
    std::printf("=> issue this query at least that far ahead of the decision\n");
  }
  return 0;
}
